package orthrus

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/errs"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
	"repro/orthrus/scenariodsl"
)

// Net selects the simulated network environment of a run.
type Net int

// The two environments the paper evaluates (Sec. VII-A).
const (
	// WAN spreads replicas over 4 regions: France, US, Australia, Tokyo.
	WAN Net = iota
	// LAN co-locates replicas at one site with 1 Gbps links.
	LAN
)

// String implements fmt.Stringer.
func (n Net) String() string {
	if n == LAN {
		return "LAN"
	}
	return "WAN"
}

// MaxReplicas is the largest supported cluster size: the bound the
// consensus engines' vote tracking and the F-scale sweep (n up to 1000,
// beyond the paper's largest evaluated n = 128) are validated to.
// Validate rejects larger values.
const MaxReplicas = 1024

// Kernel selects the discrete-event engine that executes a run.
type Kernel int

const (
	// KernelSerial is the reference single-threaded kernel: one event
	// queue, one clock. Every configuration supports it.
	KernelSerial Kernel = iota
	// KernelParallel shards replicas across a worker pool and
	// synchronizes on conservative lookahead windows derived from the
	// network's base-delay matrix. Measured results are bit-identical to
	// KernelSerial for the same seed. It requires message-level PBFT
	// (AnalyticSB false), DisableNIC true, and no slowdown factors below
	// 1 (speed-ups would undercut the lookahead); Validate enforces all
	// three. Clusters too small to shard fall back to the serial kernel.
	KernelParallel
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	if k == KernelParallel {
		return "parallel"
	}
	return "serial"
}

// Transport selects the backend that carries replica messages.
type Transport int

const (
	// TransportSim (the default) runs the cluster inside the
	// discrete-event network simulator: virtual time, modeled WAN/LAN
	// delays, deterministic results.
	TransportSim Transport = iota
	// TransportProc runs the cluster over the in-process real transport:
	// one event-loop goroutine per replica, wall-clock timers, and every
	// message wire-encoded and decoded between replicas — the same codec
	// and framing discipline the orthrus-node TCP daemon uses, without
	// sockets. Results are wall-clock measurements of this machine and
	// are NOT deterministic or reproducible across runs; Net only labels
	// the result. Simulation-only features are rejected by Validate:
	// stragglers, crash/Byzantine faults, scenarios, the analytic SB and
	// the parallel kernel. Observer.OnConfirm fires normally; OnWindow
	// and OnPhase never fire, and context cancellation cannot interrupt
	// a started real run (they are bookkeeping events of the simulated
	// clock).
	TransportProc
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	if t == TransportProc {
		return "proc"
	}
	return "sim"
}

// Config describes one run. Build it with NewConfig and functional
// options, or fill the fields directly; zero tuning knobs (durations,
// batch sizes, timeouts) take the engine defaults documented on each
// field. Validate reports every problem as a typed error before anything
// executes — the SDK never panics on a bad configuration.
type Config struct {
	// Replicas is the cluster size n (the system runs m = n instances), at
	// most MaxReplicas. Default 16.
	Replicas int
	// Protocol names a registered protocol (see Protocols). Default
	// "Orthrus".
	Protocol string
	// Net picks the WAN or LAN environment. Default WAN.
	Net Net

	// Stragglers slows this many instances by StragglerFactor (default
	// 10x), chosen from the high replica indices.
	Stragglers int
	// StragglerFactor is the slowdown multiplier; 0 means 10.
	StragglerFactor float64

	// CrashFaults crashes this many replicas at CrashAt (detectable
	// faults, Fig. 7); they do not recover. For crashes that recover, use
	// a Scenario.
	CrashFaults int
	// CrashAt is the crash injection time; 0 crashes at run start.
	CrashAt time.Duration
	// ByzantineFaults marks this many replicas Byzantine: they vote only
	// in the instance they lead (undetectable faults, Fig. 8).
	ByzantineFaults int

	// Scenario schedules mid-run fault and load events (crashes that
	// recover, partitions that heal, moving stragglers, load surges); see
	// package scenariodsl. Scenarios require message-level PBFT
	// (AnalyticSB false) and report per-phase windows on the Result.
	Scenario *scenariodsl.Scenario

	// LoadTPS is the open-loop client submission rate. Default 1000.
	LoadTPS float64
	// TotalTxs caps submitted transactions; 0 means no cap (scripted runs
	// cap at the transaction list length automatically).
	TotalTxs int
	// Duration is the submission window. Default 20s.
	Duration time.Duration
	// Warmup is excluded from throughput accounting. Default 2s.
	Warmup time.Duration
	// Drain is the extra time for in-flight txs to confirm. Default
	// 2*Duration.
	Drain time.Duration

	// Accounts sizes the synthetic workload's account population; 0 takes
	// the workload default. PaymentFraction sets the payment share of the
	// synthetic workload: 0 (the zero value) means the paper's 46%, a
	// value in (0, 1] the exact share, and any negative value an explicit
	// all-contract workload (WithPayments(0) sets that sentinel for you).
	Accounts        int
	PaymentFraction float64

	// BatchSize (default 4096), BatchTimeout (default 100ms), Window
	// (pipeline depth), EpochLen (default 32), ViewTimeout (default 10s)
	// and TxSize (default 500 bytes) tune the consensus engine; zeros take
	// those defaults.
	BatchSize    int
	BatchTimeout time.Duration
	Window       int
	EpochLen     uint64
	ViewTimeout  time.Duration
	TxSize       int
	// CensorshipBlocks is the censorship detector's patience in delivered
	// blocks: a replica that watches a feasible transaction stay unproposed
	// while this many blocks deliver in its bucket complains and votes the
	// leader out. 0 takes the engine default (64). Lower it when a run
	// censors leaders (the Censor scenario verb or the censorship preset)
	// so detection fits the run's length.
	CensorshipBlocks uint64

	// StateTransfer enables checkpoint-anchored catch-up: replicas archive
	// delivered blocks up to the stable checkpoint floor, and a recovering
	// replica refills its delivery-log gap from 2f+1 peers instead of
	// waiting for view-change no-ops — without replaying the pre-checkpoint
	// history it already executed. Long scenarios with crash/recover churn
	// want this on; off (the default) keeps the baseline recovery behavior.
	StateTransfer bool

	// SampleLiveSet, when positive, schedules a cluster-wide retained-state
	// census every interval of virtual time, reported on the Result
	// (LiveSetSamples, LiveSetPeak). The soak harness gates on the profile
	// staying flat after warmup. Sampling walks every replica from one
	// bookkeeping event, so it requires the serial kernel and the simulated
	// transport.
	SampleLiveSet time.Duration

	// AnalyticSB swaps message-level PBFT for the closed-form quorum-time
	// model (fault-free runs only; stragglers are supported).
	AnalyticSB bool
	// DisableNIC turns off the shared 1 Gbps per-node bandwidth model,
	// which is otherwise active on every message-level run.
	DisableNIC bool

	// Transport selects the backend carrying replica messages:
	// TransportSim (default, the deterministic simulator) or
	// TransportProc (the in-process real transport under wall-clock
	// time); see Transport for the restrictions real backends carry.
	Transport Transport

	// Kernel selects the discrete-event engine: KernelSerial (default) or
	// KernelParallel. The parallel kernel reproduces the serial kernel's
	// results bit-for-bit; see Kernel for its configuration requirements.
	Kernel Kernel
	// Workers bounds the parallel kernel's worker pool; 0 means
	// GOMAXPROCS. Ignored by the serial kernel.
	Workers int

	// Seed drives every random choice (network jitter, workload, preset
	// victim selection); equal seeds reproduce runs exactly. NewConfig
	// defaults it to 42; zero is itself a valid seed.
	Seed int64

	// Observer streams per-confirmation, per-window and per-phase metrics
	// during the run; see Observer. Optional.
	Observer Observer
	// CaptureState retains the observer replica's final ledger on the
	// Result (Balance, SharedValue, Converged). Only meaningful for
	// fault-free runs: crashed or partitioned replicas miss blocks and
	// report divergence.
	CaptureState bool

	txs     []*Tx            // scripted transactions (WithTransactions)
	credits map[string]int64 // initial balances for scripted runs
	trace   *workload.Trace  // replayed trace (WithTrace)
	optErr  error            // first option failure, surfaced by Validate
}

// Option mutates a Config under construction; later options override
// earlier ones.
type Option func(*Config)

// NewConfig returns the default configuration with the given options
// applied in order. Every zero field of a directly-filled Config means
// the same thing it does here (engine default), so struct literals and
// option-built configurations behave identically — NewConfig only adds
// the starting Replicas/Protocol/Net/Seed values.
func NewConfig(opts ...Option) Config {
	c := Config{
		Replicas: 16,
		Protocol: "Orthrus",
		Net:      WAN,
		Seed:     42,
	}
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithReplicas sets the cluster size n, in [1, MaxReplicas] (checked by
// Validate).
func WithReplicas(n int) Option { return func(c *Config) { c.Replicas = n } }

// WithClusterSize is WithReplicas under its deployment-facing name: it
// sets the cluster size n (and thereby m = n SB instances), in
// [1, MaxReplicas]. Validate reports out-of-range sizes as ErrInvalidConfig
// before anything runs; quorum math for every registered protocol is
// validated across this whole range — f = (n-1)/3 with commit quorum
// ceil((n+f+1)/2), the classic 2f+1 at the paper's n = 3f+1 sizes.
func WithClusterSize(n int) Option { return WithReplicas(n) }

// WithProtocol selects a registered protocol by name (see Protocols).
func WithProtocol(name string) Option { return func(c *Config) { c.Protocol = name } }

// WithNet selects the WAN or LAN environment.
func WithNet(net Net) Option { return func(c *Config) { c.Net = net } }

// WithLoad sets the open-loop client submission rate in tx/s.
func WithLoad(tps float64) Option { return func(c *Config) { c.LoadTPS = tps } }

// WithDuration sets the submission window.
func WithDuration(d time.Duration) Option { return func(c *Config) { c.Duration = d } }

// WithWarmup sets the warmup slice excluded from throughput accounting.
func WithWarmup(d time.Duration) Option { return func(c *Config) { c.Warmup = d } }

// WithDrain sets the post-window drain time for in-flight confirmations.
func WithDrain(d time.Duration) Option { return func(c *Config) { c.Drain = d } }

// WithTotalTxs caps the number of submitted transactions.
func WithTotalTxs(n int) Option { return func(c *Config) { c.TotalTxs = n } }

// WithStragglers makes count instances stragglers, slowed by factor
// (factor 0 means the paper's 10x).
func WithStragglers(count int, factor float64) Option {
	return func(c *Config) { c.Stragglers, c.StragglerFactor = count, factor }
}

// WithFaults crashes count replicas at the given time (detectable faults);
// they do not recover. For crashes that recover, use a scenario.
func WithFaults(count int, at time.Duration) Option {
	return func(c *Config) { c.CrashFaults, c.CrashAt = count, at }
}

// WithByzantine marks count replicas Byzantine (selective participation:
// they vote only in the instance they lead).
func WithByzantine(count int) Option { return func(c *Config) { c.ByzantineFaults = count } }

// WithScenario schedules a declarative fault/load timeline on the run; see
// package scenariodsl.
func WithScenario(s *scenariodsl.Scenario) Option { return func(c *Config) { c.Scenario = s } }

// WithBatching sets the consensus batch size and batch timeout (zeros keep
// the engine defaults).
func WithBatching(size int, timeout time.Duration) Option {
	return func(c *Config) { c.BatchSize, c.BatchTimeout = size, timeout }
}

// WithEpochLen sets the epoch length in blocks.
func WithEpochLen(l uint64) Option { return func(c *Config) { c.EpochLen = l } }

// WithStateTransfer enables checkpoint-anchored catch-up for recovering
// replicas; see Config.StateTransfer.
func WithStateTransfer() Option { return func(c *Config) { c.StateTransfer = true } }

// WithLiveSetSampling schedules a retained-state census every interval of
// virtual time; see Config.SampleLiveSet. Requires the serial kernel and
// the simulated transport.
func WithLiveSetSampling(interval time.Duration) Option {
	return func(c *Config) { c.SampleLiveSet = interval }
}

// WithViewTimeout sets the failure detector's view-change timeout.
func WithViewTimeout(d time.Duration) Option { return func(c *Config) { c.ViewTimeout = d } }

// WithTxSize sets the modeled transaction size in bytes.
func WithTxSize(bytes int) Option { return func(c *Config) { c.TxSize = bytes } }

// WithCensorshipDetection sets the censorship detector's patience in
// delivered blocks (0 keeps the engine default of 64). Pair it with the
// Censor scenario verb or the censorship preset so the detector fires
// within the run.
func WithCensorshipDetection(blocks uint64) Option {
	return func(c *Config) { c.CensorshipBlocks = blocks }
}

// WithAccounts sizes the synthetic workload's account population.
func WithAccounts(n int) Option { return func(c *Config) { c.Accounts = n } }

// WithPayments sets the payment fraction of the synthetic workload in
// [0, 1], where 0 means literally no payments (all-contract). To get the
// paper's default 46% mix, leave this option off entirely. A negative
// fraction is rejected by Validate — the negative sentinel belongs to the
// Config field, not this option.
func WithPayments(fraction float64) Option {
	return func(c *Config) {
		if fraction < 0 {
			if c.optErr == nil {
				c.optErr = &ValidationError{Field: "PaymentFraction",
					Reason: fmt.Sprintf("WithPayments wants a fraction in [0,1], got %g", fraction)}
			}
			return
		}
		if fraction == 0 {
			c.PaymentFraction = -1 // the field's explicit all-contract sentinel
			return
		}
		c.PaymentFraction = fraction
	}
}

// WithAnalyticSB swaps message-level PBFT for the closed-form quorum-time
// model (fault-free runs only).
func WithAnalyticSB() Option { return func(c *Config) { c.AnalyticSB = true } }

// WithNIC toggles the shared per-node bandwidth model (message-level runs
// only; on by default).
func WithNIC(enabled bool) Option { return func(c *Config) { c.DisableNIC = !enabled } }

// WithTransport selects the message-carrying backend. TransportProc runs
// the cluster over real goroutines and wall-clock time instead of the
// simulator: results become measurements of this machine rather than
// deterministic predictions, and simulation-only features (stragglers,
// faults, scenarios, the analytic SB, the parallel kernel) are rejected
// by Validate. See Transport for the full contract.
func WithTransport(t Transport) Option { return func(c *Config) { c.Transport = t } }

// WithKernel selects the discrete-event engine. KernelParallel requires
// message-level PBFT with the NIC model off (WithNIC(false)) and no
// slowdown factors below 1; Validate reports violations before anything
// runs. Results are bit-identical across kernels for the same seed.
func WithKernel(k Kernel) Option { return func(c *Config) { c.Kernel = k } }

// WithWorkers bounds the parallel kernel's worker pool; 0 means
// GOMAXPROCS. The worker count never changes results, only wall-clock
// speed.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithSeed sets the simulation seed; equal seeds reproduce runs exactly.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithObserver streams metrics to o during the run.
func WithObserver(o Observer) Option { return func(c *Config) { c.Observer = o } }

// WithFinalState retains the observer replica's final ledger on the Result
// (Balance, SharedValue, Converged).
func WithFinalState() Option { return func(c *Config) { c.CaptureState = true } }

// WithGenesis credits the given accounts at genesis on every replica; used
// with WithTransactions, whose scripted transactions spend from these
// balances.
func WithGenesis(credits map[string]int64) Option { return func(c *Config) { c.credits = credits } }

// WithTransactions replaces the synthetic workload with an explicit
// transaction list, submitted in order at the configured load rate and
// capped at the list length. Combine with WithGenesis for initial balances
// and a low WithLoad (e.g. 1 tx/s) when later transactions depend on
// earlier ones committing.
func WithTransactions(txs ...*Tx) Option {
	return func(c *Config) { c.txs = append([]*Tx(nil), txs...) }
}

// WithTrace replaces the synthetic workload with a replayed CSV trace (see
// WriteSyntheticTrace), crediting every referenced account with balance at
// genesis — the paper's reset-and-replay methodology. The reader is
// consumed by this call itself, so the returned Option is reusable: apply
// it to as many configurations as needed (each run replays its own copy).
// A malformed trace surfaces as an error from Validate (and therefore
// Run). The run is capped at the trace length unless TotalTxs sets a
// smaller cap.
func WithTrace(r io.Reader, balance int64) Option {
	trace, err := workload.ReadTrace(r, types.Amount(balance))
	return func(c *Config) {
		if err != nil {
			if c.optErr == nil {
				c.optErr = fmt.Errorf("orthrus: WithTrace: %w", err)
			}
			return
		}
		c.trace = trace
	}
}

// ErrInvalidConfig is the sentinel every Validate failure wraps; match
// with errors.Is. Individual problems are *ValidationError values
// (errors.As) and protocol lookup failures additionally wrap
// ErrUnknownProtocol. It is the same value as
// scenariodsl.ErrInvalidConfig, so one errors.Is check covers
// configuration and scenario-DSL failures alike.
var ErrInvalidConfig = errs.ErrInvalidConfig

// ValidationError pinpoints one invalid Config field.
type ValidationError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string { return "orthrus: invalid " + e.Field + ": " + e.Reason }

// Validate checks the configuration and returns nil or an error wrapping
// ErrInvalidConfig and one *ValidationError per problem. Run validates
// automatically; call Validate directly to check a configuration without
// executing it.
func (c Config) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, &ValidationError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if c.optErr != nil {
		errs = append(errs, c.optErr)
	}
	if c.Replicas < 1 {
		bad("Replicas", "need at least 1 replica, got %d", c.Replicas)
	} else if c.Replicas > MaxReplicas {
		bad("Replicas", "%d replicas exceed the supported maximum %d", c.Replicas, MaxReplicas)
	}
	if c.Protocol == "" {
		bad("Protocol", "must name a registered protocol (one of %v)", ProtocolNames())
	} else if _, err := registry.Lookup(c.Protocol); err != nil {
		errs = append(errs, err)
	}
	if c.Net != WAN && c.Net != LAN {
		bad("Net", "must be WAN or LAN, got Net(%d)", int(c.Net))
	}
	if c.Stragglers < 0 {
		bad("Stragglers", "must be non-negative, got %d", c.Stragglers)
	} else if c.Replicas >= 1 && c.Stragglers > c.Replicas {
		bad("Stragglers", "%d stragglers exceed %d replicas", c.Stragglers, c.Replicas)
	}
	if c.StragglerFactor < 0 {
		bad("StragglerFactor", "must be non-negative (0 means the default 10x), got %g", c.StragglerFactor)
	}
	if c.CrashFaults < 0 {
		bad("CrashFaults", "must be non-negative, got %d", c.CrashFaults)
	} else if c.Replicas >= 1 && c.CrashFaults >= c.Replicas {
		bad("CrashFaults", "crashing %d of %d replicas leaves no observer", c.CrashFaults, c.Replicas)
	}
	if c.CrashAt < 0 {
		bad("CrashAt", "must be non-negative, got %v", c.CrashAt)
	}
	if c.ByzantineFaults < 0 {
		bad("ByzantineFaults", "must be non-negative, got %d", c.ByzantineFaults)
	} else if c.Replicas >= 1 && c.ByzantineFaults >= c.Replicas {
		bad("ByzantineFaults", "%d Byzantine replicas exceed %d-replica cluster", c.ByzantineFaults, c.Replicas)
	}
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"Duration", c.Duration}, {"Warmup", c.Warmup}, {"Drain", c.Drain},
		{"BatchTimeout", c.BatchTimeout}, {"ViewTimeout", c.ViewTimeout},
	} {
		if f.d < 0 {
			bad(f.name, "must be non-negative, got %v", f.d)
		}
	}
	if c.LoadTPS < 0 {
		bad("LoadTPS", "must be non-negative, got %g", c.LoadTPS)
	}
	if c.TotalTxs < 0 {
		bad("TotalTxs", "must be non-negative, got %d", c.TotalTxs)
	}
	if c.Accounts < 0 {
		bad("Accounts", "must be non-negative, got %d", c.Accounts)
	}
	if c.PaymentFraction > 1 {
		bad("PaymentFraction", "must be at most 1, got %g", c.PaymentFraction)
	}
	if c.BatchSize < 0 {
		bad("BatchSize", "must be non-negative, got %d", c.BatchSize)
	}
	if c.Window < 0 {
		bad("Window", "must be non-negative, got %d", c.Window)
	}
	if c.TxSize < 0 {
		bad("TxSize", "must be non-negative, got %d", c.TxSize)
	}
	if c.AnalyticSB && (c.CrashFaults > 0 || c.ByzantineFaults > 0) {
		bad("AnalyticSB", "the analytic model does not support fault injection; use message-level PBFT")
	}
	if c.AnalyticSB && c.Scenario != nil {
		bad("Scenario", "scenarios require message-level PBFT; drop WithAnalyticSB")
	}
	if c.Kernel != KernelSerial && c.Kernel != KernelParallel {
		bad("Kernel", "must be KernelSerial or KernelParallel, got Kernel(%d)", int(c.Kernel))
	}
	if c.Transport != TransportSim && c.Transport != TransportProc {
		bad("Transport", "must be TransportSim or TransportProc, got Transport(%d)", int(c.Transport))
	}
	if c.Transport == TransportProc {
		if c.AnalyticSB {
			bad("Transport", "the real transport runs message-level PBFT only; drop WithAnalyticSB")
		}
		if c.Scenario != nil {
			bad("Transport", "scenarios mutate the simulated network; the real transport does not support them")
		}
		if c.Stragglers > 0 {
			bad("Transport", "stragglers are simulation-only; the real transport cannot slow real replicas")
		}
		if c.CrashFaults > 0 || c.ByzantineFaults > 0 {
			bad("Transport", "fault injection is simulation-only; the real transport does not support it")
		}
		if c.Kernel == KernelParallel {
			bad("Transport", "the parallel kernel executes simulations; the real transport is already concurrent")
		}
	}
	if c.Workers < 0 {
		bad("Workers", "must be non-negative (0 means GOMAXPROCS), got %d", c.Workers)
	}
	if c.SampleLiveSet < 0 {
		bad("SampleLiveSet", "must be non-negative, got %v", c.SampleLiveSet)
	}
	if c.SampleLiveSet > 0 {
		if c.Kernel == KernelParallel {
			bad("SampleLiveSet", "live-set sampling walks every replica from one bookkeeping event; use the serial kernel")
		}
		if c.Transport != TransportSim {
			bad("SampleLiveSet", "live-set sampling is simulation-only; drop the real transport")
		}
	}
	if c.Kernel == KernelParallel {
		if c.AnalyticSB {
			bad("Kernel", "the parallel kernel requires message-level PBFT; drop WithAnalyticSB")
		}
		if !c.DisableNIC && !c.AnalyticSB {
			bad("Kernel", "the parallel kernel does not model the shared NIC; add WithNIC(false)")
		}
		if c.StragglerFactor > 0 && c.StragglerFactor < 1 {
			bad("Kernel", "the parallel kernel's lookahead assumes no link runs faster than its base delay; StragglerFactor %g speeds links up", c.StragglerFactor)
		}
		if c.Scenario != nil {
			for i, e := range c.Scenario.Events {
				if e.Kind == scenariodsl.Straggle && e.Scale < 1 {
					bad("Kernel", "scenario event %d straggles with scale %g < 1; the parallel kernel's lookahead forbids link speed-ups", i, e.Scale)
				}
			}
		}
	}
	if c.Scenario != nil && c.Replicas >= 1 {
		if err := c.Scenario.Validate(c.Replicas); err != nil {
			bad("Scenario", "%v", err)
		}
	}
	for i, t := range c.txs {
		if t == nil || t.tx == nil {
			bad("Transactions", "scripted transaction %d is nil", i)
		}
	}
	if len(c.txs) > 0 && c.trace != nil {
		bad("Workload", "WithTransactions and WithTrace are mutually exclusive")
	}
	if len(c.credits) > 0 && len(c.txs) == 0 {
		bad("Genesis", "WithGenesis requires WithTransactions")
	}
	if len(c.txs) > 0 && c.TotalTxs > len(c.txs) {
		bad("TotalTxs", "cap %d exceeds the %d scripted transactions", c.TotalTxs, len(c.txs))
	}
	if c.trace != nil && c.TotalTxs > c.trace.Len() {
		bad("TotalTxs", "cap %d exceeds the %d-transaction trace", c.TotalTxs, c.trace.Len())
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrInvalidConfig, errors.Join(errs...))
}

// clusterConfig lowers a validated public Config onto the internal
// experiment harness.
func (c Config) clusterConfig() cluster.Config {
	p, err := registry.Lookup(c.Protocol)
	if err != nil {
		// Unreachable after Validate; keep the panic message actionable.
		panic("orthrus: clusterConfig on unvalidated Config: " + err.Error())
	}
	ccfg := cluster.Config{
		N:                  c.Replicas,
		Protocol:           p.New(),
		Net:                cluster.NetProfile(c.Net),
		Stragglers:         c.Stragglers,
		StragglerFactor:    c.StragglerFactor,
		DetectableFaults:   c.CrashFaults,
		FaultAt:            c.CrashAt,
		UndetectableFaults: c.ByzantineFaults,
		Scenario:           c.Scenario,
		// The field shares the workload generator's convention directly:
		// 0 = paper default, negative = all-contract.
		Workload:         workload.Config{Seed: c.Seed, Accounts: c.Accounts, PaymentFraction: c.PaymentFraction},
		LoadTPS:          c.LoadTPS,
		TotalTxs:         c.TotalTxs,
		Duration:         c.Duration,
		Warmup:           c.Warmup,
		Drain:            c.Drain,
		BatchSize:        c.BatchSize,
		BatchTimeout:     c.BatchTimeout,
		Window:           c.Window,
		EpochLen:         c.EpochLen,
		ViewTimeout:      c.ViewTimeout,
		TxSize:           c.TxSize,
		CensorshipBlocks: c.CensorshipBlocks,
		StateTransfer:    c.StateTransfer,
		SampleLiveSet:    c.SampleLiveSet,
		AnalyticSB:       c.AnalyticSB,
		// The NIC bandwidth model is a simulation concept; the real
		// transport measures real links, so it never applies there.
		NIC:          !c.DisableNIC && !c.AnalyticSB && c.Transport == TransportSim,
		Workers:      c.Workers,
		Seed:         c.Seed,
		CaptureState: c.CaptureState,
	}
	if c.Kernel == KernelParallel {
		ccfg.Kernel = cluster.KernelParallel
	}
	// Each run gets its own copies of scripted or replayed transactions:
	// the harness stamps per-run fields (submit time, cached digest) on
	// submitted transactions, and a Trace carries a read cursor — sharing
	// either across runs would break reproducibility and race under
	// RunMany.
	switch {
	case len(c.txs) > 0:
		src := &fixedSource{credits: c.credits}
		for _, t := range c.txs {
			src.txs = append(src.txs, t.tx.Clone())
		}
		ccfg.Source = src
		if ccfg.TotalTxs == 0 {
			ccfg.TotalTxs = len(src.txs)
		}
	case c.trace != nil:
		ccfg.Source = c.trace.Clone()
		if ccfg.TotalTxs == 0 {
			ccfg.TotalTxs = c.trace.Len()
		}
	}
	if obs := c.Observer; obs != nil {
		ccfg.OnConfirm = func(tx *types.Transaction, success bool, reply simnet.Time) {
			obs.OnConfirm(txInfo(tx), success, time.Duration(reply))
		}
		ccfg.OnWindow = func(w cluster.WindowStat) { obs.OnWindow(Window(w)) }
		ccfg.OnPhase = func(p cluster.PhaseWindow) { obs.OnPhase(Phase(p)) }
	}
	return ccfg
}
