package orthrus

import (
	"repro/internal/ledger"
	"repro/internal/types"
)

// Tx is one explicit transaction for a scripted run (WithTransactions):
// the SDK's opaque handle over the paper's transaction shapes. Construct
// with Payment, MultiPayment or ContractCall.
type Tx struct {
	tx *types.Transaction
}

// ID returns the transaction's content digest (a short hex string), the
// same identifier Observer callbacks report in TxInfo.ID.
func (t *Tx) ID() string { return t.tx.ID().String() }

// Kind returns "payment" or "contract".
func (t *Tx) Kind() string { return t.tx.Kind().String() }

// Payment builds a single-payer payment: from transfers amount to to.
// Under Orthrus it confirms on the fast path, straight from the partial
// logs. The nonce distinguishes otherwise-identical transactions — reuse a
// (from, to, amount, nonce) tuple and you have the same transaction.
func Payment(from, to string, amount, nonce int64) *Tx {
	return &Tx{tx: types.NewPayment(types.Key(from), types.Key(to), types.Amount(amount), uint64(nonce))}
}

// Transfer is one leg of a MultiPayment.
type Transfer struct {
	From, To string
	Amount   int64
}

// MultiPayment builds a payment with multiple payers and/or payees,
// submitted by client. It commits atomically via the escrow mechanism:
// either every payer's debit succeeds or the whole payment aborts.
func MultiPayment(client string, transfers []Transfer, nonce int64) *Tx {
	ts := make([]types.Transfer, len(transfers))
	for i, t := range transfers {
		ts[i] = types.Transfer{From: types.Key(t.From), To: types.Key(t.To), Amount: types.Amount(t.Amount)}
	}
	return &Tx{tx: types.NewMultiPayment(types.Key(client), ts, uint64(nonce))}
}

// Op is one state operation inside a ContractCall.
type Op struct {
	op types.Op
}

// SharedAssign assigns value to a shared record — a non-commutative
// operation that forces the enclosing transaction through the global log.
func SharedAssign(key string, value int64) Op {
	return Op{op: types.NewSharedAssign(types.Key(key), types.Amount(value))}
}

// ContractCall builds a contract transaction submitted by client: each
// payer pays fee into escrow and the shared ops execute at the
// transaction's global-log position.
func ContractCall(client string, payers []string, fee, nonce int64, ops ...Op) *Tx {
	shared := make([]types.Op, len(ops))
	for i, o := range ops {
		shared[i] = o.op
	}
	ks := make([]types.Key, len(payers))
	for i, p := range payers {
		ks[i] = types.Key(p)
	}
	return &Tx{tx: types.NewContractCall(types.Key(client), ks, types.Amount(fee), shared, uint64(nonce))}
}

// txInfo projects a transaction into the Observer's view.
func txInfo(tx *types.Transaction) TxInfo {
	info := TxInfo{ID: tx.ID().String(), Kind: tx.Kind().String(), Client: string(tx.Client)}
	for _, p := range tx.Payers() {
		info.Payers = append(info.Payers, string(p))
	}
	return info
}

// fixedSource feeds a scripted transaction list into a run, with initial
// balances from WithGenesis. It satisfies the workload source contract:
// the run caps submissions at the list length, so Next is never called
// past the end.
type fixedSource struct {
	txs     []*types.Transaction
	credits map[string]int64
	next    int
}

func (s *fixedSource) Genesis() func(st *ledger.Store) {
	credits := s.credits
	return func(st *ledger.Store) {
		for account, amount := range credits {
			st.Credit(types.Key(account), types.Amount(amount))
		}
	}
}

func (s *fixedSource) Next() *types.Transaction {
	tx := s.txs[s.next]
	s.next++
	return tx
}
