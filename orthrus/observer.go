package orthrus

import "time"

// TxInfo identifies one transaction in Observer callbacks.
type TxInfo struct {
	// ID is the transaction's content digest, as printed by Tx.ID.
	ID string
	// Kind is "payment" or "contract".
	Kind string
	// Client is the submitting account.
	Client string
	// Payers lists the accounts debited by the transaction.
	Payers []string
}

// Window is one closed 0.5 s measurement bin: confirmations whose
// client-visible reply landed in [Start, End), the resulting rate, and
// their mean latency. A run's full series is Result.Windows; an Observer
// streams them as they close.
type Window struct {
	Index         int
	Start, End    time.Duration
	Confirmed     int
	ThroughputTPS float64
	MeanLatency   time.Duration
}

// Phase is one scenario-delimited measurement window, labeled after the
// scenario events opening it ("baseline" for the first). Unlike the
// run-level throughput, phases do not exclude warmup — they measure the
// scenario's dynamics, not steady state.
type Phase struct {
	Label         string
	Start, End    time.Duration
	Confirmed     int
	ThroughputTPS float64
	MeanLatency   time.Duration
}

// Observer receives streaming callbacks while a run executes, replacing
// result-struct-only access: per-transaction confirmations, per-0.5 s
// metric windows, and per-scenario-phase windows the moment each closes.
// All times are virtual (since run start). Callbacks fire on the goroutine
// executing the run, in deterministic virtual-time order, and must not
// block or mutate the run; under RunMany, runs execute concurrently, so an
// observer shared between configurations must be safe for concurrent use.
// Use ObserverFuncs to implement a subset.
type Observer interface {
	// OnConfirm fires at every client-visible confirmation — the (f+1)-th
	// replica reply — with the reply's virtual arrival time. Success false
	// means the transaction confirmed as aborted.
	OnConfirm(tx TxInfo, success bool, at time.Duration)
	// OnWindow fires once per closed 0.5 s bin, in order, empty bins
	// included.
	OnWindow(w Window)
	// OnPhase fires once per scenario phase as soon as its window is
	// final; runs without a scenario never call it.
	OnPhase(p Phase)
}

// ObserverFuncs adapts free functions to the Observer interface; nil
// fields are simply skipped, so a caller can watch only confirmations,
// only windows, or any other subset.
type ObserverFuncs struct {
	Confirm func(tx TxInfo, success bool, at time.Duration)
	Window  func(w Window)
	Phase   func(p Phase)
}

// OnConfirm implements Observer.
func (o ObserverFuncs) OnConfirm(tx TxInfo, success bool, at time.Duration) {
	if o.Confirm != nil {
		o.Confirm(tx, success, at)
	}
}

// OnWindow implements Observer.
func (o ObserverFuncs) OnWindow(w Window) {
	if o.Window != nil {
		o.Window(w)
	}
}

// OnPhase implements Observer.
func (o ObserverFuncs) OnPhase(p Phase) {
	if o.Phase != nil {
		o.Phase(p)
	}
}
