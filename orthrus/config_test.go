package orthrus

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/orthrus/scenariodsl"
)

// validTrace freezes a small synthetic trace for option tests.
func validTrace(t *testing.T) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSyntheticTrace(&buf, 10, 50, 1); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestNewConfigDefaults(t *testing.T) {
	c := NewConfig()
	if c.Replicas != 16 || c.Protocol != "Orthrus" || c.Net != WAN || c.Seed != 42 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.DisableNIC || c.AnalyticSB {
		t.Fatalf("NIC should default on, AnalyticSB off: %+v", c)
	}
	if c.PaymentFraction != 0 {
		t.Fatalf("PaymentFraction should default 0 (paper default), got %g", c.PaymentFraction)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
}

// TestZeroValueConfig pins the struct-literal contract: a directly-filled
// Config means the same thing as an option-built one — zero knobs are
// engine defaults, so the zero workload is the paper's 46% payments and
// the NIC model is active.
func TestZeroValueConfig(t *testing.T) {
	c := Config{Replicas: 4, Protocol: "Orthrus"}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ccfg := c.clusterConfig()
	if ccfg.Workload.PaymentFraction != 0 {
		t.Fatalf("zero PaymentFraction must reach the workload as its own default, got %g", ccfg.Workload.PaymentFraction)
	}
	if !ccfg.NIC {
		t.Fatal("zero-value Config must keep the NIC model on")
	}
	// WithPayments(0) is the explicit all-contract request.
	if got := NewConfig(WithPayments(0)).clusterConfig().Workload.PaymentFraction; got >= 0 {
		t.Fatalf("WithPayments(0) must map to the all-contract sentinel, got %g", got)
	}
	if got := NewConfig(WithNIC(false)).clusterConfig(); got.NIC {
		t.Fatal("WithNIC(false) must disable the NIC model")
	}
}

func TestOptionsApplyInOrder(t *testing.T) {
	c := NewConfig(WithLoad(100), WithReplicas(4), WithLoad(250))
	if c.LoadTPS != 250 {
		t.Fatalf("later option must override earlier: LoadTPS = %g", c.LoadTPS)
	}
	if c.Replicas != 4 {
		t.Fatalf("Replicas = %d", c.Replicas)
	}
}

func TestOptionsSetFields(t *testing.T) {
	scn := scenariodsl.New("opt-test").CrashAt(time.Second, 1).Build()
	obs := ObserverFuncs{}
	c := NewConfig(
		WithReplicas(7),
		WithProtocol("ISS"),
		WithNet(LAN),
		WithLoad(123),
		WithDuration(9*time.Second),
		WithWarmup(time.Second),
		WithDrain(4*time.Second),
		WithTotalTxs(50),
		WithStragglers(2, 5),
		WithByzantine(1),
		WithScenario(scn),
		WithBatching(256, 50*time.Millisecond),
		WithEpochLen(64),
		WithViewTimeout(3*time.Second),
		WithTxSize(200),
		WithAccounts(1000),
		WithPayments(0.5),
		WithNIC(false),
		WithSeed(7),
		WithObserver(obs),
		WithFinalState(),
	)
	if c.Replicas != 7 || c.Protocol != "ISS" || c.Net != LAN || c.LoadTPS != 123 ||
		c.Duration != 9*time.Second || c.Warmup != time.Second || c.Drain != 4*time.Second ||
		c.TotalTxs != 50 || c.Stragglers != 2 || c.StragglerFactor != 5 || c.ByzantineFaults != 1 ||
		c.Scenario != scn || c.BatchSize != 256 || c.BatchTimeout != 50*time.Millisecond ||
		c.EpochLen != 64 || c.ViewTimeout != 3*time.Second || c.TxSize != 200 ||
		c.Accounts != 1000 || c.PaymentFraction != 0.5 || !c.DisableNIC || c.Seed != 7 ||
		c.Observer == nil || !c.CaptureState {
		t.Fatalf("options not applied: %+v", c)
	}
	// WithFaults and WithAnalyticSB conflict with the scenario above; check
	// them separately.
	c2 := NewConfig(WithFaults(2, 3*time.Second), WithAnalyticSB())
	if c2.CrashFaults != 2 || c2.CrashAt != 3*time.Second || !c2.AnalyticSB {
		t.Fatalf("fault options not applied: %+v", c2)
	}
}

func TestValidateTable(t *testing.T) {
	scn := scenariodsl.New("v").CrashAt(time.Second, 5).Build()
	cases := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"replicas", []Option{WithReplicas(0)}, "Replicas"},
		{"negative replicas", []Option{WithReplicas(-3)}, "Replicas"},
		{"unknown protocol", []Option{WithProtocol("NoSuch")}, "unknown protocol"},
		{"empty protocol", []Option{WithProtocol("")}, "Protocol"},
		{"bad net", []Option{WithNet(Net(9))}, "Net"},
		{"negative stragglers", []Option{WithStragglers(-1, 0)}, "Stragglers"},
		{"too many stragglers", []Option{WithReplicas(4), WithStragglers(5, 0)}, "Stragglers"},
		{"negative straggler factor", []Option{WithStragglers(1, -2)}, "StragglerFactor"},
		{"negative crash faults", []Option{WithFaults(-1, 0)}, "CrashFaults"},
		{"crash everyone", []Option{WithReplicas(4), WithFaults(4, 0)}, "CrashFaults"},
		{"negative crash time", []Option{WithFaults(1, -time.Second)}, "CrashAt"},
		{"negative byzantine", []Option{WithByzantine(-1)}, "ByzantineFaults"},
		{"byzantine everyone", []Option{WithReplicas(4), WithByzantine(4)}, "ByzantineFaults"},
		{"negative load", []Option{WithLoad(-1)}, "LoadTPS"},
		{"negative duration", []Option{WithDuration(-time.Second)}, "Duration"},
		{"negative warmup", []Option{WithWarmup(-time.Second)}, "Warmup"},
		{"negative drain", []Option{WithDrain(-time.Second)}, "Drain"},
		{"negative total txs", []Option{WithTotalTxs(-1)}, "TotalTxs"},
		{"negative accounts", []Option{WithAccounts(-1)}, "Accounts"},
		{"payments over 1", []Option{WithPayments(1.5)}, "PaymentFraction"},
		{"negative payments", []Option{WithPayments(-0.5)}, "PaymentFraction"},
		{"negative batch", []Option{WithBatching(-1, 0)}, "BatchSize"},
		{"negative batch timeout", []Option{WithBatching(0, -time.Second)}, "BatchTimeout"},
		{"negative view timeout", []Option{WithViewTimeout(-time.Second)}, "ViewTimeout"},
		{"negative tx size", []Option{WithTxSize(-1)}, "TxSize"},
		{"analytic with faults", []Option{WithAnalyticSB(), WithFaults(1, time.Second)}, "AnalyticSB"},
		{"analytic with byzantine", []Option{WithAnalyticSB(), WithByzantine(1)}, "AnalyticSB"},
		{"analytic with scenario", []Option{WithAnalyticSB(), WithScenario(scn)}, "Scenario"},
		{"scenario out of range", []Option{WithReplicas(4), WithScenario(scn)}, "Scenario"},
		{"genesis without transactions", []Option{WithGenesis(map[string]int64{"a": 1})}, "Genesis"},
		{"trace and transactions", []Option{
			WithTrace(validTrace(t), 100),
			WithTransactions(Payment("a", "b", 1, 1)),
		}, "mutually exclusive"},
		{"total txs over script", []Option{
			WithTransactions(Payment("a", "b", 1, 1)), WithTotalTxs(5),
		}, "TotalTxs"},
		{"nil scripted transaction", []Option{
			WithTransactions(Payment("a", "b", 1, 1), nil),
		}, "Transactions"},
		{"zero-value scripted transaction", []Option{
			WithTransactions(&Tx{}),
		}, "Transactions"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := NewConfig(c.opts...).Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid configuration")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error does not wrap ErrInvalidConfig: %v", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateUnknownProtocolTyped(t *testing.T) {
	err := NewConfig(WithProtocol("NoSuch")).Validate()
	if !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("want ErrUnknownProtocol, got %v", err)
	}
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig too, got %v", err)
	}
}

func TestValidateReportsEveryProblem(t *testing.T) {
	err := NewConfig(WithReplicas(-1), WithLoad(-5), WithProtocol("NoSuch")).Validate()
	if err == nil {
		t.Fatal("expected an error")
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error does not carry a *ValidationError: %v", err)
	}
	for _, frag := range []string{"Replicas", "LoadTPS", "unknown protocol"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("joined error %q misses %q", err, frag)
		}
	}
}

func TestValidateAcceptsPresetScenario(t *testing.T) {
	scn, err := scenariodsl.Preset("crash-recover", 10, 10*time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(WithReplicas(10), WithScenario(scn))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithTraceMalformedSurfacesFromValidate(t *testing.T) {
	err := NewConfig(WithTrace(strings.NewReader("not,a,valid,trace,line\n"), 100)).Validate()
	if err == nil {
		t.Fatal("malformed trace must fail Validate")
	}
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
}
