package orthrus

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/orthrus/scenariodsl"
)

// parallelOpts is smallOpts lowered onto the parallel kernel: the NIC
// model off (the parallel kernel rejects it) and an explicit worker
// count so the test does not depend on the host's GOMAXPROCS.
func parallelOpts(workers int) []Option {
	return append(smallOpts(),
		WithNIC(false), WithKernel(KernelParallel), WithWorkers(workers))
}

// TestKernelParallelMatchesSerial pins the SDK contract stated on
// WithKernel: for the same seed, the parallel kernel's Result is
// bit-identical to the serial kernel's on every measured field.
func TestKernelParallelMatchesSerial(t *testing.T) {
	serial, err := Run(context.Background(), append(smallOpts(), WithNIC(false))...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), parallelOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Kernel != "parallel" || parallel.Shards < 2 {
		t.Fatalf("parallel run did not shard: kernel=%q shards=%d", parallel.Kernel, parallel.Shards)
	}
	if serial.Kernel != "serial" || serial.Shards != 0 {
		t.Fatalf("serial run mislabeled: kernel=%q shards=%d", serial.Kernel, serial.Shards)
	}
	// Every measured field must agree; only the kernel labels differ.
	serial.Kernel, serial.Shards = parallel.Kernel, parallel.Shards
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("kernels diverged:\n  serial   %v\n  parallel %v", serial, parallel)
	}
}

// TestKernelWorkersNeverChangeResults runs the same configuration at
// several worker counts: wall-clock may differ, measurements may not.
func TestKernelWorkersNeverChangeResults(t *testing.T) {
	base, err := Run(context.Background(), parallelOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{3, 4} {
		res, err := Run(context.Background(), parallelOpts(w)...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Shards < 2 {
			t.Fatalf("workers=%d did not shard: shards=%d", w, res.Shards)
		}
		// More workers may mean more shards; the measurements still match.
		res.Shards = base.Shards
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=2:\n  %v\n  %v", w, base, res)
		}
	}
}

// TestKernelValidation pins the fail-fast rules on WithKernel: the
// parallel kernel rejects the analytic model, the NIC model, and any
// slowdown factor below 1 — each as an ErrInvalidConfig naming Kernel,
// before anything runs.
func TestKernelValidation(t *testing.T) {
	cases := map[string][]Option{
		"analytic": {WithKernel(KernelParallel), WithNIC(false), WithAnalyticSB()},
		"nic":      {WithKernel(KernelParallel)},
		"straggler-speedup": {
			WithKernel(KernelParallel), WithNIC(false),
			WithStragglers(1, 0.5),
		},
		"scenario-speedup": {
			WithKernel(KernelParallel), WithNIC(false),
			WithScenario(scenariodsl.New("speedup").StraggleAt(time.Second, 0.5, 0).Build()),
		},
		"bad-kernel":  {WithKernel(Kernel(7)), WithNIC(false)},
		"bad-workers": {WithKernel(KernelParallel), WithNIC(false), WithWorkers(-1)},
	}
	for name, opts := range cases {
		err := NewConfig(opts...).Validate()
		if err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("%s: %v does not wrap ErrInvalidConfig", name, err)
		}
	}
	// The serial kernel keeps accepting all of the above configurations.
	ok := NewConfig(WithStragglers(1, 0.5), WithAnalyticSB())
	if err := ok.Validate(); err != nil {
		t.Fatalf("serial kernel rejected a valid config: %v", err)
	}
}

// TestKernelFallbackSerial pins the too-small-to-shard escape hatch: one
// replica cannot split across workers, so the run executes serially and
// says so on the Result.
func TestKernelFallbackSerial(t *testing.T) {
	res, err := Run(context.Background(),
		WithReplicas(1), WithNet(LAN), WithLoad(200),
		WithDuration(1*time.Second), WithWarmup(200*time.Millisecond), WithDrain(1*time.Second),
		WithNIC(false), WithKernel(KernelParallel), WithWorkers(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "serial" || res.Shards != 0 {
		t.Fatalf("1-replica cluster should fall back: kernel=%q shards=%d", res.Kernel, res.Shards)
	}
	if res.Confirmed == 0 {
		t.Fatalf("fallback run made no progress: %v", res)
	}
}
