package orthrus

import (
	"context"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/workload"
)

// FigureResult is the structured, JSON-serializable outcome of one
// evaluation figure: every number the figure plots, with a Render method
// for the text form. It aliases the internal experiments result so the
// JSON artifact schema (orthrus-bench/v2) is byte-for-byte the same
// through the public API, serial or parallel.
type FigureResult = experiments.FigureResult

// FigureInfo names one reproducible figure for listings (an alias of the
// internal experiments type, like FigureResult).
type FigureInfo = experiments.FigureInfo

// Figures lists every reproducible evaluation figure in render order.
func Figures() []FigureInfo { return experiments.Figures() }

// FigureIDs lists the supported figure identifiers in render order.
func FigureIDs() []string { return experiments.FigureIDs() }

// ScenarioPresets lists the S1 scenario suite's preset names in figure
// order (see also scenariodsl.Presets).
func ScenarioPresets() []string { return experiments.ScenarioNames() }

// AttackPresets lists the S2 adversary suite's Byzantine attack preset
// names in figure order (see also scenariodsl.AttackPresets).
func AttackPresets() []string { return experiments.AttackNames() }

// FigureOptions tunes a RunFigures call.
type FigureOptions struct {
	// Scenarios restricts the S1 scenario suite to the named presets; nil
	// or empty selects all of them. Other figures are unaffected.
	Scenarios []string
	// Workers is the worker pool size shared across the whole suite: 0
	// uses all cores, 1 runs serially. Results are identical either way.
	Workers int
	// Scale in (0, 1] shrinks run durations, loads and the replica-count
	// axis proportionally; 1 is the full paper-sized configuration and 0
	// (the zero value) means 1. Any other value is rejected — results must
	// record the scale they actually ran at.
	Scale float64
}

// RunFigures reproduces the selected evaluation figures (see Figures) and
// returns one FigureResult per id, in the order requested. Unknown figure
// ids, unknown scenario names and out-of-range scales error before
// anything runs. The figure suite checks ctx only before starting — a
// started suite runs to completion.
func RunFigures(ctx context.Context, ids []string, o FigureOptions) ([]FigureResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scale := o.Scale
	if scale == 0 {
		scale = 1
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig,
			&ValidationError{Field: "Scale", Reason: fmt.Sprintf("must be in (0,1], got %g", o.Scale)})
	}
	return experiments.RunScenarios(ids, o.Scenarios, runner.Options{Workers: o.Workers}, scale)
}

// XValID identifies the sim-vs-real cross-validation figure, which runs
// outside the deterministic suite (see RunXVal); FigureIDs never lists it
// and "all" selections never include it.
const XValID = experiments.XValID

// XValInfo names the cross-validation figure for listings, alongside the
// Figures entries.
func XValInfo() FigureInfo { return experiments.XValInfo() }

// RunXVal runs the sim-vs-real cross-validation figure: each (protocol,
// cluster size) cell once through the discrete-event simulator and once
// over the in-process real transport under the identical configuration,
// returning the two measurements side by side. Unlike RunFigures results,
// the real-measured table holds wall-clock numbers from this machine —
// they vary run to run, which is why this figure lives outside the
// deterministic suite and always runs its cells serially. Ctx is checked
// only before starting; a started figure runs to completion.
func RunXVal(ctx context.Context, scale float64) (FigureResult, error) {
	if err := ctx.Err(); err != nil {
		return FigureResult{}, err
	}
	if scale == 0 {
		scale = 1
	}
	if scale <= 0 || scale > 1 {
		return FigureResult{}, fmt.Errorf("%w: %w", ErrInvalidConfig,
			&ValidationError{Field: "Scale", Reason: fmt.Sprintf("must be in (0,1], got %g", scale)})
	}
	return experiments.XVal(scale)
}

// SoakID identifies the long-horizon soak figure, which runs outside the
// deterministic suite (see RunSoak); FigureIDs never lists it and "all"
// selections never include it.
const SoakID = experiments.SoakID

// SoakInfo names the soak figure for listings, alongside the Figures
// entries.
func SoakInfo() FigureInfo { return experiments.SoakInfo() }

// RunSoak runs the long-horizon soak figure: one WAN cell with state
// transfer on under continuous crash/recover churn, an hour of virtual
// time over n = 100 replicas at full scale, sampling the cluster-wide
// retained-state census throughout. The figure's acceptance signal is the
// census staying flat after warmup — checkpoint GC bounding memory at any
// virtual-time horizon. The cell needs the serial kernel (live-set
// sampling) and hours of virtual time, which is why it lives outside the
// deterministic suite. Ctx is checked only before starting; a started
// figure runs to completion.
func RunSoak(ctx context.Context, scale float64) (FigureResult, error) {
	if err := ctx.Err(); err != nil {
		return FigureResult{}, err
	}
	if scale == 0 {
		scale = 1
	}
	if scale <= 0 || scale > 1 {
		return FigureResult{}, fmt.Errorf("%w: %w", ErrInvalidConfig,
			&ValidationError{Field: "Scale", Reason: fmt.Sprintf("must be in (0,1], got %g", scale)})
	}
	return experiments.Soak(scale)
}

// WriteSyntheticTrace freezes n transactions of the synthetic
// Ethereum-like workload (46% payments, Zipf-skewed accounts) into the CSV
// trace format, for replay with WithTrace — the paper's reset-and-replay
// methodology. Accounts sizes the account population (0 takes the
// workload default); equal arguments always produce the same trace.
func WriteSyntheticTrace(w io.Writer, n int, accounts int, seed int64) error {
	// The trace format encodes single-caller contracts only.
	gen := workload.New(workload.Config{Seed: seed, Accounts: accounts, ContractCallers: 1})
	return gen.Export(w, n)
}
