package orthrus

import (
	"repro/internal/netbench"
)

// NetBenchArtifact is the structured outcome of a real-transport perf
// run (schema orthrus-bench-net/v1): one cell per (backend, cluster
// size) with delivered-message rates, allocations per message and frame
// latency percentiles. It aliases the internal netbench artifact so the
// BENCH_net.json written through the public API is byte-identical to the
// internal harness's.
type NetBenchArtifact = netbench.Artifact

// NetBenchCell is one measured (backend, n) point of a NetBenchArtifact
// (an alias of the internal netbench type, like NetBenchArtifact).
type NetBenchCell = netbench.Cell

// NetBenchOptions tunes RunNetBench; the zero value measures the
// standard grid (proc and loopback-TCP backends, n in {4, 10}).
type NetBenchOptions = netbench.Options

// NetBenchSchema identifies the artifact format RunNetBench produces.
const NetBenchSchema = netbench.Schema

// RunNetBench measures the real-transport data path end to end — wire
// encoding, framing, queueing, delivery and decoding, with counting
// handlers in place of the consensus state machines — and returns the
// BENCH_net.json artifact cells. The numbers are wall-clock facts about
// this machine: rates and latencies vary with the host, allocations per
// message are host-stable. `orthrus-bench -bench-net` is the CLI entry
// point.
func RunNetBench(opts NetBenchOptions) (*NetBenchArtifact, error) {
	return netbench.Run(opts)
}
