// Package orthrus is the public SDK over the Orthrus Multi-BFT simulation
// system (ICDE 2025): build a simulated cluster of any registered
// protocol, drive a workload at it, inject stragglers, faults and dynamic
// scenarios, and stream or collect the measurements the paper plots — all
// without touching the internal packages.
//
// The canonical quickstart — run Orthrus and a baseline on a simulated
// WAN with one straggler, and compare client latency:
//
//	ctx := context.Background()
//	for _, protocol := range []string{"Orthrus", "ISS"} {
//		res, err := orthrus.Run(ctx,
//			orthrus.WithProtocol(protocol),
//			orthrus.WithReplicas(8),
//			orthrus.WithNet(orthrus.WAN),
//			orthrus.WithStragglers(1, 10),
//			orthrus.WithLoad(2000),
//			orthrus.WithDuration(8*time.Second),
//		)
//		if err != nil {
//			log.Fatal(err)
//		}
//		fmt.Printf("%-8s mean latency %.2fs\n", protocol, res.Latency.Mean.Seconds())
//	}
//
// # Configuration
//
// A run is described by a Config, built from defaults plus functional
// options (WithProtocol, WithNet, WithLoad, WithScenario, WithStragglers,
// WithFaults, WithBatching, ...); later options override earlier ones.
// Config.Validate reports every problem as a typed error — match
// ErrInvalidConfig with errors.Is, extract *ValidationError with
// errors.As — and Run never panics on bad input. Every simulation is
// seeded and self-contained: the same Config reproduces the same Result
// exactly, and RunMany fans independent configurations across all cores
// with results identical to a serial sweep.
//
// # Protocols
//
// Protocols are resolved by name through a shared registry: Orthrus plus
// the paper's five baselines (ISS, RCC, Mir, DQBFT, Ladon) are always
// present, Protocols lists them, and Register plugs a new protocol into
// every sweep, figure and CLI without touching the engine layers.
// Registry errors are typed: ErrUnknownProtocol, ErrDuplicateProtocol.
//
// # Workloads
//
// The default workload is the synthetic Ethereum-like stream (WithLoad,
// WithAccounts, WithPayments). Alternatives: WithTrace replays a frozen
// CSV trace (WriteSyntheticTrace produces one), and WithTransactions
// scripts an explicit transaction list built with Payment, MultiPayment
// and ContractCall — combine with WithGenesis and WithFinalState to
// inspect final balances (Result.Balance, Result.SharedValue,
// Result.Converged).
//
// # Observation
//
// Result-struct access covers whole-run measurements; an Observer
// (WithObserver) streams them while the simulation executes —
// per-transaction confirmations, per-0.5 s metric windows, and
// per-scenario-phase windows the moment each closes. Dynamic fault/load
// timelines are built with the sibling package scenariodsl and attached
// with WithScenario.
//
// # Figures
//
// RunFigures reproduces the paper's evaluation figures end to end (the
// machinery behind cmd/orthrus-bench), returning structured FigureResult
// values whose JSON form is the orthrus-bench/v2 artifact schema.
package orthrus
