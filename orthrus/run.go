package orthrus

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// Run executes one simulated experiment built from the default
// configuration plus the given options, and returns its measurements.
// Equivalent to NewConfig(opts...).Run(ctx).
func Run(ctx context.Context, opts ...Option) (*Result, error) {
	return NewConfig(opts...).Run(ctx)
}

// Run validates the configuration and executes it. Invalid configurations
// return an error wrapping ErrInvalidConfig without running anything. A
// cancellable ctx is polled every 0.5 s of virtual time; on cancellation
// the simulation stops and Run returns the partial Result (Halted true,
// measurements covering only the virtual time before the stop) together
// with the context's error. The run is deterministic for a given Config
// (ctx aside): equal seeds reproduce results exactly, serial or parallel.
func (c Config) Run(ctx context.Context) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ccfg := c.clusterConfig()
	if c.Transport == TransportProc {
		// The real backend runs on wall-clock time: there is no simulated
		// 0.5 s bookkeeping tick to poll Halt on, so a started run always
		// completes (bounded by Duration+Drain of real time).
		return fromCluster(cluster.RunReal(ccfg)), nil
	}
	if ctx.Done() != nil {
		ccfg.Halt = func() bool { return ctx.Err() != nil }
	}
	res := cluster.Run(ccfg)
	if res.Halted {
		return fromCluster(res), ctx.Err()
	}
	return fromCluster(res), nil
}

// RunMany executes every configuration and returns results indexed like
// the input, fanned out over a worker pool (workers 0 uses all cores, 1
// runs serially). Every simulation is seeded and self-contained, so a
// parallel sweep's results are identical to a serial one's. All
// configurations are validated up front — nothing runs if any is invalid,
// and the error names the offending index. Observers fire concurrently
// across runs. Ctx cancellation stops every run at its next 0.5 s window
// and returns the context's error alongside the results measured so far —
// runs that finished before the cancellation are complete, the rest carry
// Halted true.
func RunMany(ctx context.Context, cfgs []Config, workers int) ([]*Result, error) {
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		if c.Transport == TransportProc {
			// Real-transport runs are wall-clock measurements; fanning
			// them out across one machine's cores would have them contend
			// for exactly the resources being measured. Run them one at a
			// time through Config.Run.
			return nil, fmt.Errorf("config %d: %w: %w", i, ErrInvalidConfig,
				&ValidationError{Field: "Transport", Reason: "RunMany is simulation-only; run TransportProc configs individually"})
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jobs := make([]runner.Job, len(cfgs))
	for i, c := range cfgs {
		ccfg := c.clusterConfig()
		if ctx.Done() != nil {
			ccfg.Halt = func() bool { return ctx.Err() != nil }
		}
		jobs[i] = runner.NewJob(ccfg)
	}
	results := runner.Run(jobs, runner.Options{Workers: workers})
	out := make([]*Result, len(results))
	for i, r := range results {
		out[i] = fromCluster(r)
	}
	return out, ctx.Err()
}
