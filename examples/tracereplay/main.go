// Tracereplay: freeze a synthetic Ethereum-like workload into the CSV
// trace format, then replay the same trace through two different protocols
// — the paper's reset-and-replay methodology (Sec. VII-A) end to end,
// entirely through the public SDK.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/orthrus"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	// 1. Generate and freeze a 2,000-transaction trace (46% payments,
	//    Zipf-skewed accounts — the paper's dataset in miniature).
	var frozen bytes.Buffer
	if err := orthrus.WriteSyntheticTrace(&frozen, 2000, 500, 2024); err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "frozen trace: %d transactions, %d bytes CSV\n\n",
		2000, frozen.Len())

	// 2. Replay the identical trace under Orthrus and ISS: same inputs,
	//    same genesis (every account reset to the same balance).
	replay := func(protocol string) *orthrus.Result {
		res, err := orthrus.Run(context.Background(),
			orthrus.WithProtocol(protocol),
			orthrus.WithReplicas(8),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithStragglers(1, 10),
			orthrus.WithTrace(bytes.NewReader(frozen.Bytes()), 1_000_000),
			orthrus.WithLoad(400),
			orthrus.WithDuration(5*time.Second),
			orthrus.WithDrain(30*time.Second),
			orthrus.WithBatching(256, 100*time.Millisecond),
			orthrus.WithSeed(7),
		)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Fprintf(w, "%-10s %10s %10s %10s %9s\n", "protocol", "confirmed", "aborted", "mean lat", "p99")
	for _, protocol := range []string{"Orthrus", "ISS"} {
		res := replay(protocol)
		fmt.Fprintf(w, "%-10s %10d %10d %9.2fs %8.2fs\n",
			protocol, res.Latency.Count, res.Aborted,
			res.Latency.Mean.Seconds(), res.Latency.P99.Seconds())
	}
	fmt.Fprintln(w, "\nSame trace, same genesis, one 10x straggler: Orthrus confirms")
	fmt.Fprintln(w, "payments from partial logs while ISS serializes everything through")
	fmt.Fprintln(w, "the straggler-gated global log.")
}
