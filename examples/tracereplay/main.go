// Tracereplay: freeze a synthetic Ethereum-like workload into the CSV
// trace format, then replay the same trace through two different protocols
// — the paper's reset-and-replay methodology (Sec. VII-A) end to end.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	// 1. Generate and freeze a 2,000-transaction trace (46% payments,
	//    Zipf-skewed accounts — the paper's dataset in miniature).
	gen := workload.New(workload.Config{Seed: 2024, Accounts: 500, ContractCallers: 1})
	var frozen bytes.Buffer
	if err := gen.Export(&frozen, 2000); err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "frozen trace: %d transactions, %d bytes CSV\n\n",
		2000, frozen.Len())

	// 2. Replay the identical trace under Orthrus and ISS: same inputs,
	//    same genesis (every account reset to the same balance).
	replay := func(mode core.Mode) *cluster.Result {
		trace, err := workload.ReadTrace(bytes.NewReader(frozen.Bytes()), 1_000_000)
		if err != nil {
			panic(err)
		}
		return cluster.Run(cluster.Config{
			N:            8,
			Protocol:     mode,
			Net:          cluster.WAN,
			Stragglers:   1,
			Source:       trace,
			LoadTPS:      400,
			TotalTxs:     trace.Len(),
			Duration:     5 * time.Second,
			Drain:        30 * time.Second,
			BatchSize:    256,
			BatchTimeout: 100 * time.Millisecond,
			NIC:          true,
			Seed:         7,
		})
	}

	fmt.Fprintf(w, "%-10s %10s %10s %10s %9s\n", "protocol", "confirmed", "aborted", "mean lat", "p99")
	for _, mode := range []core.Mode{core.OrthrusMode(), baseline.ISSMode()} {
		res := replay(mode)
		fmt.Fprintf(w, "%-10s %10d %10d %9.2fs %8.2fs\n",
			mode.Name, res.Latency.Count(), res.Aborted,
			res.Latency.Mean().Seconds(), res.Latency.Percentile(99).Seconds())
	}
	fmt.Fprintln(w, "\nSame trace, same genesis, one 10x straggler: Orthrus confirms")
	fmt.Fprintln(w, "payments from partial logs while ISS serializes everything through")
	fmt.Fprintln(w, "the straggler-gated global log.")
}
