package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun freezes a trace and replays it through Orthrus and ISS,
// asserting the replay table renders for both protocols.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a 2000-transaction trace through two clusters")
	}
	var out bytes.Buffer
	run(&out)
	s := out.String()
	for _, marker := range []string{"frozen trace: 2000 transactions", "Orthrus", "ISS", "Same trace, same genesis"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
