// Straggler: the paper's headline scenario. Runs Orthrus and ISS side by
// side on a simulated WAN with one 10x-slow instance and prints the latency
// gap (Fig. 3d's message in miniature). The six independent runs fan out
// across cores through internal/runner.
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() { run(os.Stdout, 1) }

// run executes the example, writing its narrative to w. Scale in (0,1]
// shrinks durations and load for quick smoke runs; 1 is the full example.
func run(w io.Writer, scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	cfg := func(mode core.Mode, stragglers int) cluster.Config {
		return cluster.Config{
			N:            8,
			Protocol:     mode,
			Net:          cluster.WAN,
			Stragglers:   stragglers,
			Workload:     workload.Config{Accounts: 2000, Seed: 1},
			LoadTPS:      2000 * scale,
			Duration:     time.Duration(float64(8*time.Second) * scale),
			Drain:        time.Duration(float64(40*time.Second) * scale),
			BatchSize:    512,
			BatchTimeout: 100 * time.Millisecond,
			NIC:          true,
			Seed:         1,
		}
	}

	modes := []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()}
	var jobs []runner.Job
	for _, mode := range modes {
		jobs = append(jobs, runner.NewJob(cfg(mode, 0)), runner.NewJob(cfg(mode, 1)))
	}
	results := runner.Run(jobs, runner.Options{})

	fmt.Fprintln(w, "WAN, 8 replicas, 46% payments — mean client latency")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %16s %16s\n", "protocol", "no straggler", "one straggler")
	for i, mode := range modes {
		clean, slow := results[2*i], results[2*i+1]
		fmt.Fprintf(w, "%-10s %15.2fs %15.2fs\n", mode.Name,
			clean.Latency.Mean().Seconds(), slow.Latency.Mean().Seconds())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Orthrus's payments bypass the global log, so the straggler only")
	fmt.Fprintln(w, "delays contract transactions; ISS serializes everything behind the")
	fmt.Fprintln(w, "slow instance's positions in the global log.")
}
