// Straggler: the paper's headline scenario. Runs Orthrus and ISS side by
// side on a simulated WAN with one 10x-slow instance and prints the latency
// gap (Fig. 3d's message in miniature). The six independent runs fan out
// across cores through orthrus.RunMany.
//
//	go run ./examples/straggler
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/orthrus"
)

func main() { run(os.Stdout, 1) }

// run executes the example, writing its narrative to w. Scale in (0,1]
// shrinks durations and load for quick smoke runs; 1 is the full example.
func run(w io.Writer, scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	cfg := func(protocol string, stragglers int) orthrus.Config {
		return orthrus.NewConfig(
			orthrus.WithProtocol(protocol),
			orthrus.WithReplicas(8),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithStragglers(stragglers, 10),
			orthrus.WithAccounts(2000),
			orthrus.WithLoad(2000*scale),
			orthrus.WithDuration(time.Duration(float64(8*time.Second)*scale)),
			orthrus.WithDrain(time.Duration(float64(40*time.Second)*scale)),
			orthrus.WithBatching(512, 100*time.Millisecond),
			orthrus.WithSeed(1),
		)
	}

	protocols := []string{"Orthrus", "ISS", "Ladon"}
	var cfgs []orthrus.Config
	for _, p := range protocols {
		cfgs = append(cfgs, cfg(p, 0), cfg(p, 1))
	}
	results, err := orthrus.RunMany(context.Background(), cfgs, 0)
	if err != nil {
		panic(err)
	}

	fmt.Fprintln(w, "WAN, 8 replicas, 46% payments — mean client latency")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %16s %16s\n", "protocol", "no straggler", "one straggler")
	for i, p := range protocols {
		clean, slow := results[2*i], results[2*i+1]
		fmt.Fprintf(w, "%-10s %15.2fs %15.2fs\n", p,
			clean.Latency.Mean.Seconds(), slow.Latency.Mean.Seconds())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Orthrus's payments bypass the global log, so the straggler only")
	fmt.Fprintln(w, "delays contract transactions; ISS serializes everything behind the")
	fmt.Fprintln(w, "slow instance's positions in the global log.")
}
