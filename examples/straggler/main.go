// Straggler: the paper's headline scenario. Runs Orthrus and ISS side by
// side on a simulated WAN with one 10x-slow instance and prints the latency
// gap (Fig. 3d's message in miniature).
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	run := func(mode core.Mode, stragglers int) *cluster.Result {
		return cluster.Run(cluster.Config{
			N:            8,
			Protocol:     mode,
			Net:          cluster.WAN,
			Stragglers:   stragglers,
			Workload:     workload.Config{Accounts: 2000, Seed: 1},
			LoadTPS:      2000,
			Duration:     8 * time.Second,
			Drain:        40 * time.Second,
			BatchSize:    512,
			BatchTimeout: 100 * time.Millisecond,
			NIC:          true,
			Seed:         1,
		})
	}

	fmt.Println("WAN, 8 replicas, 46% payments — mean client latency")
	fmt.Println()
	fmt.Printf("%-10s %16s %16s\n", "protocol", "no straggler", "one straggler")
	for _, mode := range []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()} {
		clean := run(mode, 0)
		slow := run(mode, 1)
		fmt.Printf("%-10s %15.2fs %15.2fs\n", mode.Name,
			clean.Latency.Mean().Seconds(), slow.Latency.Mean().Seconds())
	}
	fmt.Println()
	fmt.Println("Orthrus's payments bypass the global log, so the straggler only")
	fmt.Println("delays contract transactions; ISS serializes everything behind the")
	fmt.Println("slow instance's positions in the global log.")
}
