package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun executes the straggler comparison at reduced scale through the
// parallel runner and checks all three protocol rows render.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six 8-replica clusters")
	}
	var out bytes.Buffer
	run(&out, 0.2)
	s := out.String()
	for _, marker := range []string{"protocol", "Orthrus", "ISS", "Ladon", "one straggler"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
