package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun executes the quickstart end to end: both transactions confirm
// and every replica converges (run panics on divergence).
func TestRun(t *testing.T) {
	var out bytes.Buffer
	run(&out)
	s := out.String()
	for _, marker := range []string{"confirmed success=true", "final state at replica 0", "all replicas agree"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
