// Quickstart: the canonical SDK snippet. A 4-replica Orthrus cluster on a
// simulated LAN executes a scripted payment and contract call through
// orthrus.Run, streaming each confirmation and reading the final state
// back from the observer replica.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/orthrus"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	// A simple payment (fast path: confirmed from the partial log) and a
	// contract call (confirmed through the global log).
	pay := orthrus.Payment("alice", "bob", 30, 1)
	contract := orthrus.ContractCall("bob", []string{"bob"}, 5, 2,
		orthrus.SharedAssign("counter", 7))

	res, err := orthrus.Run(context.Background(),
		orthrus.WithReplicas(4),
		orthrus.WithNet(orthrus.LAN),
		orthrus.WithLoad(1), // one scripted transaction per second
		orthrus.WithDuration(3*time.Second),
		orthrus.WithDrain(3*time.Second),
		orthrus.WithBatching(16, 20*time.Millisecond),
		orthrus.WithSeed(1),
		orthrus.WithGenesis(map[string]int64{"alice": 100, "bob": 50}),
		orthrus.WithTransactions(pay, contract),
		orthrus.WithFinalState(),
		orthrus.WithObserver(orthrus.ObserverFuncs{
			Confirm: func(tx orthrus.TxInfo, success bool, at time.Duration) {
				fmt.Fprintf(w, "[%8s] %-8s tx %s confirmed success=%v\n",
					at, tx.Kind, tx.ID, success)
			},
		}),
	)
	if err != nil {
		panic(err)
	}

	fmt.Fprintf(w, "\nfinal state at replica 0:\n")
	fmt.Fprintf(w, "  alice   = %d (paid 30)\n", res.Balance("alice"))
	fmt.Fprintf(w, "  bob     = %d (received 30, paid 5 fee)\n", res.Balance("bob"))
	fmt.Fprintf(w, "  counter = %d (assigned by the contract)\n", res.SharedValue("counter"))

	// Every replica reached the same state (safety, Theorem 1).
	if !res.Converged {
		panic("replicas diverged")
	}
	fmt.Fprintln(w, "all replicas agree ✔")
}
