// Quickstart: a 4-replica Orthrus cluster on a simulated LAN. Submits a
// payment and a contract call, then prints confirmations and final state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	const n = 4
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, n, simnet.NewLAN())

	genesis := func(st *ledger.Store) {
		st.Credit("alice", 100)
		st.Credit("bob", 50)
	}

	// Build n replicas; replica 0 reports confirmations.
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		cfg := core.Config{
			N: n, F: 1, ID: i, M: n,
			Mode:         core.OrthrusMode(),
			BatchSize:    16,
			BatchTimeout: 20 * time.Millisecond,
			Genesis:      genesis,
		}
		if i == 0 {
			cfg.OnConfirm = func(tx *types.Transaction, success bool, at simnet.Time) {
				fmt.Fprintf(w, "[%8s] %-8s tx %s confirmed success=%v\n",
					at, tx.Kind(), tx.ID(), success)
			}
		}
		replicas[i] = core.NewReplica(cfg, sim, nw)
	}
	for _, r := range replicas {
		r.Start()
	}

	// A simple payment (fast path: confirmed from the partial log) and a
	// contract call (confirmed through the global log).
	pay := types.NewPayment("alice", "bob", 30, 1)
	contract := types.NewContractCall("bob", []types.Key{"bob"}, 5,
		[]types.Op{types.NewSharedAssign("counter", 7)}, 2)
	for _, tx := range []*types.Transaction{pay, contract} {
		tx.SubmitNS = int64(sim.Now())
		for _, r := range replicas {
			if err := r.SubmitTx(tx); err != nil {
				panic(err)
			}
		}
	}

	// Advance virtual time until everything confirms.
	sim.Run(simnet.Time(3 * time.Second))

	st := replicas[0].Store()
	fmt.Fprintf(w, "\nfinal state at replica 0:\n")
	fmt.Fprintf(w, "  alice   = %d (paid 30)\n", st.Balance("alice"))
	fmt.Fprintf(w, "  bob     = %d (received 30, paid 5 fee)\n", st.Balance("bob"))
	fmt.Fprintf(w, "  counter = %d (assigned by the contract)\n", st.SharedValue("counter"))

	// Every replica reached the same state (safety, Theorem 1).
	for i := 1; i < n; i++ {
		if !replicas[i].Store().Snapshot().Equal(st.Snapshot()) {
			panic(fmt.Sprintf("replica %d diverged", i))
		}
	}
	fmt.Fprintln(w, "all replicas agree ✔")
}
