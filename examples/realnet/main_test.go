package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun executes the sim-vs-real walkthrough at reduced scale and
// checks both backends report measurements.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a wall-clock real-transport cluster")
	}
	var out bytes.Buffer
	run(&out, 0.3)
	s := out.String()
	for _, marker := range []string{
		"sim-predicted vs real-measured",
		"simulated", "kernel=serial",
		"real", "kernel=real",
		"tps", "p99",
	} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
