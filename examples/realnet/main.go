// Realnet: the same experiment run twice — once inside the discrete-event
// simulator and once over the real in-process transport, where every
// replica is a goroutine on wall-clock timers and every message crosses
// the wire codec. The side-by-side output is the cross-validation story
// (figure X-val): the simulator predicts, the real backend measures, and
// under a LAN profile the two should tell the same story.
//
// The switch is one option: orthrus.WithTransport(orthrus.TransportProc).
// Everything else — workload, batching, protocol — is shared. For a
// multi-process cluster over real sockets, see cmd/orthrus-node.
//
//	go run ./examples/realnet
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/orthrus"
)

func main() { run(os.Stdout, 1) }

// run executes the example, writing its narrative to w. Scale in (0,1]
// shrinks durations and load for quick smoke runs; 1 is the full example.
func run(w io.Writer, scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	dur := time.Duration(float64(4*time.Second) * scale)

	opts := func(extra ...orthrus.Option) []orthrus.Option {
		base := []orthrus.Option{
			orthrus.WithReplicas(4),
			orthrus.WithNet(orthrus.LAN),
			orthrus.WithAccounts(500),
			orthrus.WithLoad(400 * scale),
			orthrus.WithDuration(dur),
			orthrus.WithWarmup(dur / 4),
			orthrus.WithDrain(2 * dur),
			orthrus.WithBatching(4096, 50*time.Millisecond),
			orthrus.WithSeed(42),
		}
		return append(base, extra...)
	}

	// Pass 1: the simulator. Deterministic — same seed, same numbers,
	// every time, on any machine.
	sim, err := orthrus.Run(context.Background(), opts()...)
	if err != nil {
		panic(err)
	}

	// Pass 2: the real backend. The identical configuration, but replicas
	// run concurrently and latency is measured, not modeled. Numbers vary
	// run to run — they are wall-clock facts about this machine.
	measured, err := orthrus.Run(context.Background(),
		opts(orthrus.WithTransport(orthrus.TransportProc))...)
	if err != nil {
		panic(err)
	}

	fmt.Fprintln(w, "Orthrus, 4 replicas, LAN profile — sim-predicted vs real-measured:")
	fmt.Fprintln(w)
	row := func(label string, res *orthrus.Result) {
		fmt.Fprintf(w, "  %-14s kernel=%-8s %8.1f tps  mean=%6.2fms  p99=%6.2fms  confirmed=%d\n",
			label, res.Kernel, res.ThroughputTPS,
			float64(res.Latency.Mean.Microseconds())/1000,
			float64(res.Latency.P99.Microseconds())/1000,
			res.Confirmed)
	}
	row("simulated", sim)
	row("real", measured)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The simulated run models LAN link latency; the real run pays actual")
	fmt.Fprintln(w, "scheduler, socket-free channel and encode/decode costs. Throughput")
	fmt.Fprintln(w, "should agree (both are load-bound well under saturation); latency")
	fmt.Fprintln(w, "differs by the gap between the modeled network and this machine.")
}
