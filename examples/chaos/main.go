// Chaos: a composite dynamic-fault scenario — a 10x straggler window
// overlapping a two-replica crash-recover cycle — on a 7-replica WAN
// cluster, run for Orthrus and ISS side by side through the public SDK.
// The per-phase windows show what the static figures cannot: how each
// protocol's throughput collapses and recovers around every event. The
// runs fan out across cores through orthrus.RunMany.
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/orthrus"
	"repro/orthrus/scenariodsl"
)

func main() { run(os.Stdout, 1) }

// run executes the example, writing its narrative to w. Scale in (0,1]
// shrinks durations and load for quick smoke runs; 1 is the full example.
func run(w io.Writer, scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	dur := time.Duration(float64(10*time.Second) * scale)
	frac := func(p float64) time.Duration { return time.Duration(float64(dur) * p) }

	// One straggler from 10% of the run, two crashed replicas between 30%
	// and 60%, everything healthy again from 80%.
	scn := scenariodsl.New("straggle+crash-recover").
		StraggleAt(frac(0.1), 10, 4).
		CrashAt(frac(0.3), 5, 6).
		RecoverAt(frac(0.6), 5, 6).
		StraggleAt(frac(0.8), 1, 4).
		Build()

	cfg := func(protocol string) orthrus.Config {
		return orthrus.NewConfig(
			orthrus.WithProtocol(protocol),
			orthrus.WithReplicas(7),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithScenario(scn),
			orthrus.WithAccounts(2000),
			orthrus.WithLoad(1500*scale),
			orthrus.WithDuration(dur),
			orthrus.WithDrain(2*dur),
			orthrus.WithBatching(512, 0),
			orthrus.WithViewTimeout(dur/5), // recovery must fit the shrunk run
			orthrus.WithSeed(1),
		)
	}

	protocols := []string{"Orthrus", "ISS"}
	results, err := orthrus.RunMany(context.Background(),
		[]orthrus.Config{cfg(protocols[0]), cfg(protocols[1])}, 0)
	if err != nil {
		panic(err)
	}

	fmt.Fprintln(w, "WAN, 7 replicas — composite scenario:", scn.Name)
	for _, e := range scn.Events {
		fmt.Fprintln(w, "  ", e)
	}
	fmt.Fprintln(w)
	for i, protocol := range protocols {
		res := results[i]
		fmt.Fprintf(w, "%s  (view changes: %d)\n", protocol, res.ViewChanges)
		for _, p := range res.Phases {
			fmt.Fprintf(w, "  %-20s [%5.1fs,%6.1fs)  %8.1f tps  lat=%5.2fs\n",
				p.Label, p.Start.Seconds(), p.End.Seconds(), p.ThroughputTPS, p.MeanLatency.Seconds())
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Orthrus's dynamic ordering lets the healthy instances keep")
	fmt.Fprintln(w, "confirming through the straggler and the crash window; ISS's")
	fmt.Fprintln(w, "predetermined global positions serialize everything behind the")
	fmt.Fprintln(w, "slowest instance until the replicas recover.")
}
