// Chaos: a composite dynamic-fault scenario — a 10x straggler window
// overlapping a two-replica crash-recover cycle — on a 7-replica WAN
// cluster, run for Orthrus and ISS side by side. The per-phase windows
// show what the static figures cannot: how each protocol's throughput
// collapses and recovers around every event. The runs fan out across
// cores through internal/runner.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() { run(os.Stdout, 1) }

// run executes the example, writing its narrative to w. Scale in (0,1]
// shrinks durations and load for quick smoke runs; 1 is the full example.
func run(w io.Writer, scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	dur := time.Duration(float64(10*time.Second) * scale)
	frac := func(p float64) time.Duration { return time.Duration(float64(dur) * p) }

	// One straggler from 10% of the run, two crashed replicas between 30%
	// and 60%, everything healthy again from 80%.
	scn := scenario.New("straggle+crash-recover").
		StraggleAt(frac(0.1), 10, 4).
		CrashAt(frac(0.3), 5, 6).
		RecoverAt(frac(0.6), 5, 6).
		StraggleAt(frac(0.8), 1, 4).
		Build()

	cfg := func(mode core.Mode) cluster.Config {
		return cluster.Config{
			N:           7,
			Protocol:    mode,
			Net:         cluster.WAN,
			Scenario:    scn,
			Workload:    workload.Config{Accounts: 2000, Seed: 1},
			LoadTPS:     1500 * scale,
			Duration:    dur,
			Drain:       2 * dur,
			BatchSize:   512,
			ViewTimeout: dur / 5, // recovery must fit the shrunk run
			NIC:         true,
			Seed:        1,
		}
	}

	modes := []core.Mode{core.OrthrusMode(), baseline.ISSMode()}
	jobs := []runner.Job{runner.NewJob(cfg(modes[0])), runner.NewJob(cfg(modes[1]))}
	results := runner.Run(jobs, runner.Options{})

	fmt.Fprintln(w, "WAN, 7 replicas — composite scenario:", scn.Name)
	for _, e := range scn.Events {
		fmt.Fprintln(w, "  ", e)
	}
	fmt.Fprintln(w)
	for i, mode := range modes {
		res := results[i]
		fmt.Fprintf(w, "%s  (view changes: %d)\n", mode.Name, res.ViewChanges)
		for _, p := range res.Phases {
			fmt.Fprintf(w, "  %-20s [%5.1fs,%6.1fs)  %8.1f tps  lat=%5.2fs\n",
				p.Label, p.Start.Seconds(), p.End.Seconds(), p.ThroughputTPS, p.MeanLatency.Seconds())
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Orthrus's dynamic ordering lets the healthy instances keep")
	fmt.Fprintln(w, "confirming through the straggler and the crash window; ISS's")
	fmt.Fprintln(w, "predetermined global positions serialize everything behind the")
	fmt.Fprintln(w, "slowest instance until the replicas recover.")
}
