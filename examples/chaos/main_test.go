package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun executes the chaos walkthrough at reduced scale and checks both
// protocols render their per-phase windows.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two 7-replica scenario clusters")
	}
	var out bytes.Buffer
	run(&out, 0.3)
	s := out.String()
	for _, marker := range []string{
		"straggle+crash-recover", "Orthrus", "ISS",
		"baseline", "crash", "recover", "straggle",
	} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
