// Payments: the paper's Appendix B running example. Two instances' worth of
// clients (Alice, Bob, Carol), a single-payer payment, a multi-payer
// payment that must commit atomically across instances via the escrow
// mechanism, and a contract call that escrows both callers' fees.
//
//	go run ./examples/payments
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	const n = 4
	sim := simnet.New(7)
	nw := simnet.NewNetwork(sim, n, simnet.NewLAN())

	// Initial balances from Appendix B: Alice $4, Bob $0, Carol $0.
	genesis := func(st *ledger.Store) {
		st.Credit("alice", 4)
	}

	confirmed := map[string]bool{}
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		cfg := core.Config{
			N: n, F: 1, ID: i, M: n,
			Mode:         core.OrthrusMode(),
			BatchSize:    8,
			BatchTimeout: 20 * time.Millisecond,
			Genesis:      genesis,
		}
		if i == 0 {
			cfg.OnConfirm = func(tx *types.Transaction, success bool, at simnet.Time) {
				fmt.Fprintf(w, "[%8s] confirmed %s success=%v payers=%v\n",
					at, tx.ID(), success, tx.Payers())
				confirmed[tx.ID().String()] = success
			}
		}
		replicas[i] = core.NewReplica(cfg, sim, nw)
	}
	for _, r := range replicas {
		r.Start()
	}

	submit := func(tx *types.Transaction) {
		tx.SubmitNS = int64(sim.Now())
		for _, r := range replicas {
			if err := r.SubmitTx(tx); err != nil {
				panic(err)
			}
		}
	}

	// tx0: Alice -> Bob $2 (single payer, executed from the partial log).
	tx0 := types.NewPayment("alice", "bob", 2, 0)
	submit(tx0)
	sim.Run(simnet.Time(1 * time.Second))

	// tx1: Alice and Bob each pay Carol $1 — two payers, two instances,
	// atomic via escrow. Bob can only afford it because tx0 landed.
	tx1 := types.NewMultiPayment("alice", []types.Transfer{
		{From: "alice", To: "carol", Amount: 1},
		{From: "bob", To: "carol", Amount: 1},
	}, 1)
	submit(tx1)
	sim.Run(simnet.Time(2 * time.Second))

	// tx2: Alice and Bob invoke a contract together, $1 each. The fees are
	// escrowed from the partial logs; the shared op executes in the glog.
	tx2 := types.NewContractCall("alice", []types.Key{"alice", "bob"}, 1,
		[]types.Op{types.NewSharedAssign("contract-state", 99)}, 2)
	submit(tx2)
	sim.Run(simnet.Time(4 * time.Second))

	// tx3: a multi-payer payment that MUST abort: Carol has $2, tries to
	// pay $3 alongside Alice. Alice's escrowed leg is refunded.
	tx3 := types.NewMultiPayment("carol", []types.Transfer{
		{From: "carol", To: "bob", Amount: 3},
		{From: "alice", To: "bob", Amount: 1},
	}, 3)
	// Disable the feasibility pre-check path by submitting to backups too;
	// the leader re-queues infeasible legs, so this tx never confirms —
	// demonstrating that underfunded multi-payer payments cannot commit.
	submit(tx3)
	sim.Run(simnet.Time(6 * time.Second))

	st := replicas[0].Store()
	fmt.Fprintf(w, "\nfinal balances: alice=%d bob=%d carol=%d  contract-state=%d\n",
		st.Balance("alice"), st.Balance("bob"), st.Balance("carol"),
		st.SharedValue("contract-state"))
	fmt.Fprintf(w, "escrows outstanding: %d (must be 0: no funds stuck)\n", st.EscrowCount())
	if _, ok := confirmed[tx3.ID().String()]; ok {
		fmt.Fprintln(w, "tx3 confirmed (unexpected)")
	} else {
		fmt.Fprintln(w, "tx3 (underfunded multi-payer) correctly never committed ✔")
	}

	for i := 1; i < n; i++ {
		if !replicas[i].Store().Snapshot().Equal(st.Snapshot()) {
			panic(fmt.Sprintf("replica %d diverged", i))
		}
	}
	fmt.Fprintln(w, "all replicas agree ✔")
}
