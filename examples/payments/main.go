// Payments: the paper's Appendix B running example through the public
// SDK. Clients from two instances (Alice, Bob, Carol), a single-payer
// payment, a multi-payer payment that must commit atomically across
// instances via the escrow mechanism, a contract call that escrows both
// callers' fees — plus an underfunded multi-payer payment that must not
// commit.
//
//	go run ./examples/payments
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/orthrus"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	// tx0: Alice -> Bob $2 (single payer, executed from the partial log).
	tx0 := orthrus.Payment("alice", "bob", 2, 0)
	// tx1: Alice and Bob each pay Carol $1 — two payers, two instances,
	// atomic via escrow. Bob can only afford it because tx0 landed first.
	tx1 := orthrus.MultiPayment("alice", []orthrus.Transfer{
		{From: "alice", To: "carol", Amount: 1},
		{From: "bob", To: "carol", Amount: 1},
	}, 1)
	// tx2: Alice and Bob invoke a contract together, $1 each. The fees are
	// escrowed from the partial logs; the shared op executes in the glog.
	tx2 := orthrus.ContractCall("alice", []string{"alice", "bob"}, 1, 2,
		orthrus.SharedAssign("contract-state", 99))
	// tx3: a multi-payer payment that MUST abort: Carol has $2, tries to
	// pay $3 alongside Alice. Alice's escrowed leg is refunded.
	tx3 := orthrus.MultiPayment("carol", []orthrus.Transfer{
		{From: "carol", To: "bob", Amount: 3},
		{From: "alice", To: "bob", Amount: 1},
	}, 3)

	confirmed := map[string]bool{}
	res, err := orthrus.Run(context.Background(),
		orthrus.WithReplicas(4),
		orthrus.WithNet(orthrus.LAN),
		orthrus.WithLoad(1), // one scripted transaction per second, in order
		orthrus.WithDuration(6*time.Second),
		orthrus.WithDrain(6*time.Second),
		orthrus.WithBatching(8, 20*time.Millisecond),
		orthrus.WithSeed(7),
		// Initial balances from Appendix B: Alice $4, Bob $0, Carol $0.
		orthrus.WithGenesis(map[string]int64{"alice": 4}),
		orthrus.WithTransactions(tx0, tx1, tx2, tx3),
		orthrus.WithFinalState(),
		orthrus.WithObserver(orthrus.ObserverFuncs{
			Confirm: func(tx orthrus.TxInfo, success bool, at time.Duration) {
				fmt.Fprintf(w, "[%8s] confirmed %s success=%v payers=%v\n",
					at, tx.ID, success, tx.Payers)
				if success {
					confirmed[tx.ID] = true
				}
			},
		}),
	)
	if err != nil {
		panic(err)
	}

	fmt.Fprintf(w, "\nfinal balances: alice=%d bob=%d carol=%d  contract-state=%d\n",
		res.Balance("alice"), res.Balance("bob"), res.Balance("carol"),
		res.SharedValue("contract-state"))
	fmt.Fprintf(w, "escrows outstanding: %d (must be 0: no funds stuck)\n", res.EscrowsOutstanding())
	if confirmed[tx3.ID()] {
		fmt.Fprintln(w, "tx3 confirmed (unexpected)")
	} else {
		fmt.Fprintln(w, "tx3 (underfunded multi-payer) correctly never committed ✔")
	}

	// Every replica reached the same state (safety, Theorem 1).
	if !res.Converged {
		panic("replicas diverged")
	}
	fmt.Fprintln(w, "all replicas agree ✔")
}
