package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun executes the Appendix B walkthrough: the underfunded multi-payer
// payment must never commit, no escrow may leak, and replicas converge.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	run(&out)
	s := out.String()
	for _, marker := range []string{
		"escrows outstanding: 0",
		"correctly never committed",
		"all replicas agree",
	} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
