package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun executes the fault-tolerance timeline: the crash must trigger at
// least one view change and the run must still confirm transactions.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 7-replica cluster for 16 simulated seconds")
	}
	var out bytes.Buffer
	run(&out)
	s := out.String()
	for _, marker := range []string{"View changes observed:", "tput(tps)", "confirmed"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
	if strings.Contains(s, "View changes observed: 0") {
		t.Fatalf("crash produced no view change:\n%s", s)
	}
}
