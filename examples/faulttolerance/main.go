// Faulttolerance: crashes a replica mid-run and shows the view-change
// recovery timeline — throughput dips when the fault hits, the failure
// detector replaces the leader after the timeout, and confirmations resume
// (Fig. 7's story).
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	res := cluster.Run(cluster.Config{
		N:                7,
		Protocol:         core.OrthrusMode(),
		Net:              cluster.WAN,
		DetectableFaults: 1,
		FaultAt:          5 * time.Second,
		ViewTimeout:      3 * time.Second,
		Workload:         workload.Config{Accounts: 2000, Seed: 3},
		LoadTPS:          1500,
		Duration:         16 * time.Second,
		Drain:            10 * time.Second,
		BatchSize:        256,
		BatchTimeout:     100 * time.Millisecond,
		EpochLen:         32,
		NIC:              true,
		Seed:             3,
	})

	fmt.Println("Orthrus, WAN, 7 replicas; replica 6 crashes at t=5s, view-change")
	fmt.Printf("timeout 3s. View changes observed: %d\n\n", res.ViewChanges)
	fmt.Println("  t(s)   tput(tps)  bar")
	max := 0.0
	for i := 0; i < res.Series.Bins(); i++ {
		if tp := res.Series.Throughput(i); tp > max {
			max = tp
		}
	}
	for i := 0; i < res.Series.Bins(); i += 2 {
		tp := res.Series.Throughput(i)
		barLen := 0
		if max > 0 {
			barLen = int(tp / max * 50)
		}
		fmt.Printf("  %4.1f  %9.0f  %s\n",
			float64(i)*res.Series.Bin.Seconds(), tp, strings.Repeat("#", barLen))
	}
	fmt.Printf("\nconfirmed %d, aborted %d, mean latency %.2fs\n",
		res.Confirmed, res.Aborted, res.Latency.Mean().Seconds())
	fmt.Println("\nThe dip after t=5s is the crashed leader's instance stalling; after")
	fmt.Println("the view change the next replica takes over and fills the gap with")
	fmt.Println("no-op blocks, releasing the blocked global-log positions.")
}
