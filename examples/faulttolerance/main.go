// Faulttolerance: crashes a replica mid-run and shows the view-change
// recovery timeline — throughput dips when the fault hits, the failure
// detector replaces the leader after the timeout, and confirmations resume
// (Fig. 7's story).
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/orthrus"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	res, err := orthrus.Run(context.Background(),
		orthrus.WithReplicas(7),
		orthrus.WithNet(orthrus.WAN),
		orthrus.WithFaults(1, 5*time.Second),
		orthrus.WithViewTimeout(3*time.Second),
		orthrus.WithAccounts(2000),
		orthrus.WithLoad(1500),
		orthrus.WithDuration(16*time.Second),
		orthrus.WithDrain(10*time.Second),
		orthrus.WithBatching(256, 100*time.Millisecond),
		orthrus.WithEpochLen(32),
		orthrus.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}

	fmt.Fprintln(w, "Orthrus, WAN, 7 replicas; replica 6 crashes at t=5s, view-change")
	fmt.Fprintf(w, "timeout 3s. View changes observed: %d\n\n", res.ViewChanges)
	fmt.Fprintln(w, "  t(s)   tput(tps)  bar")
	max := 0.0
	for _, win := range res.Windows {
		if win.ThroughputTPS > max {
			max = win.ThroughputTPS
		}
	}
	for i := 0; i < len(res.Windows); i += 2 {
		win := res.Windows[i]
		barLen := 0
		if max > 0 {
			barLen = int(win.ThroughputTPS / max * 50)
		}
		fmt.Fprintf(w, "  %4.1f  %9.0f  %s\n",
			win.Start.Seconds(), win.ThroughputTPS, strings.Repeat("#", barLen))
	}
	fmt.Fprintf(w, "\nconfirmed %d, aborted %d, mean latency %.2fs\n",
		res.Confirmed, res.Aborted, res.Latency.Mean.Seconds())
	fmt.Fprintln(w, "\nThe dip after t=5s is the crashed leader's instance stalling; after")
	fmt.Fprintln(w, "the view change the next replica takes over and fills the gap with")
	fmt.Fprintln(w, "no-op blocks, releasing the blocked global-log positions.")
}
