// Faulttolerance: crashes a replica mid-run and shows the view-change
// recovery timeline — throughput dips when the fault hits, the failure
// detector replaces the leader after the timeout, and confirmations resume
// (Fig. 7's story).
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() { run(os.Stdout) }

// run executes the example, writing its narrative to w.
func run(w io.Writer) {
	res := cluster.Run(cluster.Config{
		N:                7,
		Protocol:         core.OrthrusMode(),
		Net:              cluster.WAN,
		DetectableFaults: 1,
		FaultAt:          5 * time.Second,
		ViewTimeout:      3 * time.Second,
		Workload:         workload.Config{Accounts: 2000, Seed: 3},
		LoadTPS:          1500,
		Duration:         16 * time.Second,
		Drain:            10 * time.Second,
		BatchSize:        256,
		BatchTimeout:     100 * time.Millisecond,
		EpochLen:         32,
		NIC:              true,
		Seed:             3,
	})

	fmt.Fprintln(w, "Orthrus, WAN, 7 replicas; replica 6 crashes at t=5s, view-change")
	fmt.Fprintf(w, "timeout 3s. View changes observed: %d\n\n", res.ViewChanges)
	fmt.Fprintln(w, "  t(s)   tput(tps)  bar")
	max := 0.0
	for i := 0; i < res.Series.Bins(); i++ {
		if tp := res.Series.Throughput(i); tp > max {
			max = tp
		}
	}
	for i := 0; i < res.Series.Bins(); i += 2 {
		tp := res.Series.Throughput(i)
		barLen := 0
		if max > 0 {
			barLen = int(tp / max * 50)
		}
		fmt.Fprintf(w, "  %4.1f  %9.0f  %s\n",
			float64(i)*res.Series.Bin.Seconds(), tp, strings.Repeat("#", barLen))
	}
	fmt.Fprintf(w, "\nconfirmed %d, aborted %d, mean latency %.2fs\n",
		res.Confirmed, res.Aborted, res.Latency.Mean().Seconds())
	fmt.Fprintln(w, "\nThe dip after t=5s is the crashed leader's instance stalling; after")
	fmt.Fprintln(w, "the view change the next replica takes over and fills the gap with")
	fmt.Fprintln(w, "no-op blocks, releasing the blocked global-log positions.")
}
