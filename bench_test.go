package repro

// Benchmark harness: one benchmark per evaluation figure (Sec. VII), a
// whole-suite benchmark that exercises the parallel runner
// (BenchmarkFigureSuite), plus ablations for the design choices DESIGN.md
// calls out and micro-benchmarks for the hot substrates. Figure benchmarks run scaled-down configurations
// (the full paper-sized sweeps are cmd/orthrus-bench -scale 1); the custom
// ReportMetric outputs — ktps, latency seconds — are the quantities the
// paper plots, so regressions in protocol behavior show up directly.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/order"
	"repro/internal/pbft"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// benchCfg is a laptop-sized configuration of the Sec. VII-A setup.
func benchCfg(mode core.Mode, n int, net cluster.NetProfile) cluster.Config {
	return cluster.Config{
		N:            n,
		Protocol:     mode,
		Net:          net,
		Workload:     workload.Config{Accounts: 4000, Seed: 42},
		LoadTPS:      3000,
		Duration:     6 * time.Second,
		Warmup:       1 * time.Second,
		Drain:        20 * time.Second,
		BatchSize:    1024,
		BatchTimeout: 100 * time.Millisecond,
		EpochLen:     128,
		ViewTimeout:  10 * time.Second,
		AnalyticSB:   n >= 32,
		NIC:          n < 32,
		Seed:         42,
	}
}

func reportCluster(b *testing.B, res *cluster.Result) {
	b.ReportMetric(res.ThroughputTPS/1000, "ktps")
	b.ReportMetric(res.Latency.Mean().Seconds(), "lat-s")
	b.ReportMetric(res.Latency.Percentile(99).Seconds(), "p99-s")
}

// BenchmarkFig1b regenerates the motivating breakdown: ISS with one 10x
// straggler; the reported global-s metric is the global-ordering stage that
// dominates total latency (92.8% in the paper).
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(baseline.ISSMode(), 16, cluster.WAN)
		cfg.Stragglers = 1
		res := cluster.Run(cfg)
		b.ReportMetric(res.Breakdown.Mean(metrics.StageGlobal).Seconds(), "global-s")
		b.ReportMetric(res.Breakdown.Mean(metrics.StagePartial).Seconds(), "partial-s")
	}
}

// benchSweepPoint runs one (protocol, straggler) cell of Figs. 3/4 at n=16.
func benchSweepPoint(b *testing.B, mode core.Mode, net cluster.NetProfile, stragglers int) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(mode, 16, net)
		cfg.Stragglers = stragglers
		reportCluster(b, cluster.Run(cfg))
	}
}

// BenchmarkFig3 covers the WAN grid of Fig. 3 (per-protocol sub-benchmarks,
// with and without a straggler).
func BenchmarkFig3(b *testing.B) {
	for _, mode := range baseline.AllModes() {
		mode := mode
		b.Run(mode.Name+"/straggler=0", func(b *testing.B) { benchSweepPoint(b, mode, cluster.WAN, 0) })
		b.Run(mode.Name+"/straggler=1", func(b *testing.B) { benchSweepPoint(b, mode, cluster.WAN, 1) })
	}
}

// BenchmarkFig4 covers the LAN grid of Fig. 4.
func BenchmarkFig4(b *testing.B) {
	for _, mode := range baseline.AllModes() {
		mode := mode
		b.Run(mode.Name+"/straggler=0", func(b *testing.B) { benchSweepPoint(b, mode, cluster.LAN, 0) })
		b.Run(mode.Name+"/straggler=1", func(b *testing.B) { benchSweepPoint(b, mode, cluster.LAN, 1) })
	}
}

// BenchmarkFig3Scale exercises the replica-count axis with the analytic SB
// (the regime where message-level simulation is infeasible).
func BenchmarkFig3Scale(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		n := n
		b.Run(core.OrthrusMode().Name+"/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(core.OrthrusMode(), n, cluster.WAN)
				cfg.Stragglers = 1
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkFig5 sweeps the payment proportion (Orthrus, WAN, straggler).
func BenchmarkFig5(b *testing.B) {
	for _, frac := range []float64{-1, 0.46, 1.0} {
		frac := frac
		name := "pay=0%"
		if frac > 0 {
			name = "pay=" + itoa(int(frac*100)) + "%"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(core.OrthrusMode(), 16, cluster.WAN)
				cfg.Stragglers = 1
				cfg.Workload.PaymentFraction = frac
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkFig6 compares the Orthrus vs ISS latency breakdown.
func BenchmarkFig6(b *testing.B) {
	for _, mode := range []core.Mode{core.OrthrusMode(), baseline.ISSMode()} {
		mode := mode
		b.Run(mode.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(mode, 16, cluster.WAN)
				cfg.Stragglers = 1
				res := cluster.Run(cfg)
				b.ReportMetric(res.Breakdown.Mean(metrics.StageGlobal).Seconds(), "global-s")
				b.ReportMetric(res.Breakdown.Total().Seconds(), "total-s")
			}
		})
	}
}

// BenchmarkFig7 runs the detectable-fault timeline (crash at t=9s).
func BenchmarkFig7(b *testing.B) {
	for _, faults := range []int{0, 1, 5} {
		faults := faults
		b.Run("f="+itoa(faults), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(core.OrthrusMode(), 16, cluster.WAN)
				cfg.Duration = 20 * time.Second
				cfg.DetectableFaults = faults
				cfg.FaultAt = 9 * time.Second
				cfg.EpochLen = 64
				res := cluster.Run(cfg)
				reportCluster(b, res)
				b.ReportMetric(float64(res.ViewChanges), "view-changes")
			}
		})
	}
}

// BenchmarkFig8 runs the undetectable-fault sweep.
func BenchmarkFig8(b *testing.B) {
	for _, byz := range []int{0, 1, 5} {
		byz := byz
		b.Run("byz="+itoa(byz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(core.OrthrusMode(), 16, cluster.WAN)
				cfg.UndetectableFaults = byz
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkFigS1 runs one scenario-suite cell per preset: Orthrus under
// each dynamic fault/load timeline, reporting throughput, latency and the
// view changes the scenario provoked.
func BenchmarkFigS1(b *testing.B) {
	for _, name := range scenario.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(core.OrthrusMode(), 10, cluster.WAN)
				cfg.AnalyticSB = false
				cfg.NIC = true
				cfg.EpochLen = 64
				cfg.ViewTimeout = cfg.Duration / 5
				scn, err := scenario.Preset(name, cfg.N, cfg.Duration, cfg.Seed)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Scenario = scn
				res := cluster.Run(cfg)
				reportCluster(b, res)
				b.ReportMetric(float64(res.ViewChanges), "view-changes")
			}
		})
	}
}

// BenchmarkFigureSuite regenerates the whole figure suite at a small scale
// through internal/runner, serially and with the full worker pool; the
// wall-clock gap between the two sub-benchmarks is the runner's speedup.
// Both produce identical FigureResults (see the determinism tests).
func BenchmarkFigureSuite(b *testing.B) {
	for _, workers := range []int{1, 0} {
		workers := workers
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiments.Run(experiments.FigureIDs(), runner.Options{Workers: workers}, 0.05)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(experiments.FigureIDs()) {
					b.Fatalf("got %d figures", len(results))
				}
			}
		})
	}
}

// --- F-scale: hot-path scale benchmarks (allocs/op gated in CI) ---

// scaleBenchCfg is the fixed configuration of the BenchmarkScale cells and
// the orthrus-bench -bench harness: message-level PBFT under NIC for n < 32
// (the regime the allocation pass targets), analytic SB above. It is
// deliberately identical across both harnesses so the BENCH_scale.json
// artifact and the go-test numbers measure the same work.
func scaleBenchCfg(mode core.Mode, n int) cluster.Config {
	return cluster.Config{
		N:            n,
		Protocol:     mode,
		Net:          cluster.WAN,
		Workload:     workload.Config{Accounts: 4000, Seed: 42},
		LoadTPS:      2000,
		Duration:     4 * time.Second,
		Warmup:       1 * time.Second,
		Drain:        8 * time.Second,
		BatchSize:    1024,
		BatchTimeout: 100 * time.Millisecond,
		EpochLen:     128,
		ViewTimeout:  10 * time.Second,
		AnalyticSB:   n >= 32,
		NIC:          n < 32,
		Seed:         42,
	}
}

// BenchmarkScale is the benchmark-gate on the simulator hot path: one run
// per (protocol, n) cell with allocation accounting. The reported
// sim-events/sec metric is the simulator's raw event rate — the quantity
// the allocation-reduction pass optimizes — and allocs/op is the number CI
// compares against BENCH_scale.json regressions.
func BenchmarkScale(b *testing.B) {
	type cell struct {
		mode core.Mode
		n    int
	}
	var cells []cell
	ns := []int{4, 10, 25}
	if testing.Short() {
		ns = []int{4, 10}
	}
	for _, mode := range []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()} {
		for _, n := range ns {
			cells = append(cells, cell{mode, n})
		}
	}
	if !testing.Short() {
		// The analytic large-n cells, completing the orthrus-bench -bench
		// grid (BENCH_scale.json cells and these sub-benchmarks match
		// one-to-one).
		for _, n := range []int{50, 100} {
			cells = append(cells, cell{core.OrthrusMode(), n})
		}
	}
	for _, c := range cells {
		c := c
		b.Run(c.mode.Name+"/n="+itoa(c.n), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(scaleBenchCfg(c.mode, c.n))
				events += res.Events
				reportCluster(b, res)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
		})
	}
}

// scaleKernelCfg is the fixed configuration of the BenchmarkScaleParallel
// cells and the orthrus-bench kernel-tier cells: message-level PBFT with
// the NIC model off — the regime the parallel kernel accepts — at a load
// and window small enough that the serial/parallel pair fits the CI smoke
// budget even at n = 100. It matches perfConfig's "kernel" tier so the
// BENCH_scale.json parallel columns and these sub-benchmarks measure the
// same work.
func scaleKernelCfg(mode core.Mode, n int) cluster.Config {
	return cluster.Config{
		N:            n,
		Protocol:     mode,
		Net:          cluster.WAN,
		Workload:     workload.Config{Accounts: 4000, Seed: 42},
		LoadTPS:      500,
		Duration:     1 * time.Second,
		Warmup:       250 * time.Millisecond,
		Drain:        1 * time.Second,
		BatchSize:    1024,
		BatchTimeout: 250 * time.Millisecond,
		EpochLen:     128,
		ViewTimeout:  10 * time.Second,
		Seed:         42,
	}
}

// BenchmarkScaleParallel pits the conservative parallel kernel against the
// serial reference on the message-level NIC-off cells, asserting
// bit-identical results while it measures: the serial/parallel ns/op ratio
// is the kernel's speedup (≈1x on a single-core runner by construction —
// the conservative windows add only barrier overhead there). The n = 100
// pair dominates the sub-benchmark's wall clock and is trimmed under
// -short.
func BenchmarkScaleParallel(b *testing.B) {
	ns := []int{50, 100}
	if testing.Short() {
		ns = []int{50}
	}
	for _, n := range ns {
		n := n
		serial := cluster.Run(scaleKernelCfg(core.OrthrusMode(), n))
		for _, kern := range []cluster.Kernel{cluster.KernelSerial, cluster.KernelParallel} {
			kern := kern
			b.Run(kern.String()+"/n="+itoa(n), func(b *testing.B) {
				b.ReportAllocs()
				var events uint64
				var shards int
				for i := 0; i < b.N; i++ {
					cfg := scaleKernelCfg(core.OrthrusMode(), n)
					cfg.Kernel = kern
					if kern == cluster.KernelParallel {
						// Floor at two workers so a single-core runner still
						// exercises the sharded path rather than the serial
						// fallback.
						if cfg.Workers = runtime.GOMAXPROCS(0); cfg.Workers < 2 {
							cfg.Workers = 2
						}
					}
					res := cluster.Run(cfg)
					if res.Confirmed != serial.Confirmed || res.Events != serial.Events {
						b.Fatalf("%s kernel diverged at n=%d: confirmed %d events %d, serial saw %d/%d",
							kern, n, res.Confirmed, res.Events, serial.Confirmed, serial.Events)
					}
					events += res.Events
					shards = res.Shards
					reportCluster(b, res)
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
				if kern == cluster.KernelParallel {
					b.ReportMetric(float64(shards), "shards")
				}
			})
		}
	}
}

// --- ablations (DESIGN.md Sec. 4) ---

// BenchmarkAblationOrdering swaps Orthrus's dynamic glog for the
// predetermined one: contract latency under a straggler degrades toward
// ISS, showing the dynamic ordering's contribution.
func BenchmarkAblationOrdering(b *testing.B) {
	predet := core.Mode{
		Name:             "Orthrus-predet",
		NewGlobal:        func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		FastPathPayments: true,
		SplitMultiPayer:  true,
	}
	for _, mode := range []core.Mode{core.OrthrusMode(), predet} {
		mode := mode
		b.Run(mode.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(mode, 16, cluster.WAN)
				cfg.Stragglers = 1
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationEscrow disables the payment fast path (escrow-at-plog):
// payments then wait for the global log exactly like Ladon, quantifying the
// fast path's latency win.
func BenchmarkAblationEscrow(b *testing.B) {
	noFast := baseline.LadonMode()
	noFast.Name = "Orthrus-noFastPath"
	for _, mode := range []core.Mode{core.OrthrusMode(), noFast} {
		mode := mode
		b.Run(mode.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(mode, 16, cluster.WAN)
				cfg.Stragglers = 1
				cfg.Workload.PaymentFraction = 1.0
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationSplit disables multi-payer splitting under a
// multi-payer-heavy payment workload.
func BenchmarkAblationSplit(b *testing.B) {
	noSplit := core.OrthrusMode()
	noSplit.Name = "Orthrus-noSplit"
	noSplit.SplitMultiPayer = false
	for _, mode := range []core.Mode{core.OrthrusMode(), noSplit} {
		mode := mode
		b.Run(mode.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(mode, 16, cluster.WAN)
				cfg.Workload.PaymentFraction = 1.0
				cfg.Workload.MultiPayerFraction = 0.5
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationSB cross-checks analytic vs message-level SB end to end.
func BenchmarkAblationSB(b *testing.B) {
	for _, analytic := range []bool{false, true} {
		analytic := analytic
		name := "message-level"
		if analytic {
			name = "analytic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(core.OrthrusMode(), 16, cluster.WAN)
				cfg.AnalyticSB = analytic
				cfg.NIC = false
				reportCluster(b, cluster.Run(cfg))
			}
		})
	}
}

// --- micro-benchmarks for the hot substrates ---

// BenchmarkEscrow measures the escrow/commit cycle on the ledger.
func BenchmarkEscrow(b *testing.B) {
	st := ledger.NewStore()
	st.Credit("payer", types.Amount(b.N)*10+1000)
	tx := types.NewPayment("payer", "payee", 1, 1)
	op := tx.Ops[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tx.ID()
		id[0] = byte(i)
		if !st.Escrow(op, id) {
			b.Fatal("escrow failed")
		}
		st.CommitEscrow(id)
	}
}

// BenchmarkDynamicOrderer measures Ladon's rank-based global ordering.
func BenchmarkDynamicOrderer(b *testing.B) {
	d := order.NewDynamic(16)
	blocks := make([]*types.Block, 16)
	for i := range blocks {
		blocks[i] = &types.Block{Instance: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i%16]
		blk.SN = uint64(i / 16)
		blk.Rank = uint64(i + 1)
		d.Deliver(blk)
	}
}

// BenchmarkPBFTRound measures one full 4-replica consensus round including
// the event-driven network simulation.
func BenchmarkPBFTRound(b *testing.B) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	delivered := 0
	engines := make([]*pbft.Engine, 4)
	for i := 0; i < 4; i++ {
		i := i
		cfg := pbft.Config{N: 4, F: 1, ID: i, Instance: 0, Timeout: time.Hour, Window: 1 << 20,
			OnDeliver: func(blk *types.Block) {
				if i == 0 {
					delivered++
				}
			}}
		engines[i] = pbft.New(cfg, benchTransport{nw: nw, id: i}, simnet.On(sim, i))
		nw.Register(i, func(from int, msg any) { engines[i].Handle(from, msg.(pbft.Message)) })
	}
	blk := &types.Block{Instance: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := *blk
		blk.SN = uint64(i)
		if err := engines[0].Propose(&blk); err != nil {
			b.Fatal(err)
		}
		sim.RunAll(0)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkWorkloadGen measures transaction generation.
func BenchmarkWorkloadGen(b *testing.B) {
	g := workload.New(workload.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

type benchTransport struct {
	nw *simnet.Network
	id int
}

func (t benchTransport) Broadcast(size int, msg pbft.Message) { t.nw.Broadcast(t.id, size, msg) }
func (t benchTransport) Send(to, size int, msg pbft.Message)  { t.nw.Send(t.id, to, size, msg) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
