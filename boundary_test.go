package repro

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestPublicAPIBoundary enforces the SDK boundary: nothing under cmd/ or
// examples/ may import any repro/internal/... package — the public
// packages orthrus and orthrus/scenariodsl are the only supported entry
// points. This pins the api_redesign contract: the internal layers can be
// refactored freely as long as the public surface holds.
//
// One deliberate exception: cmd/orthrus-node is deployment
// infrastructure, not an SDK consumer — it assembles a single replica
// over the raw wire/transport layer (peer tables, TCP framing, the
// per-process node loop), a level the SDK intentionally does not expose;
// orthrus.Run covers the whole-cluster in-process case instead.
func TestPublicAPIBoundary(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			if strings.HasPrefix(filepath.ToSlash(path), "cmd/orthrus-node/") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range file.Imports {
				target, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if strings.HasPrefix(target, "repro/internal/") || target == "repro/internal" {
					t.Errorf("%s imports %s: cmd/ and examples/ must build exclusively against the public orthrus packages", path, target)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
