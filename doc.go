// Package repro is a from-scratch Go reproduction of "Orthrus: Accelerating
// Multi-BFT Consensus through Concurrent Partial Ordering of Transactions"
// (ICDE 2025).
//
// The system lives under internal/: a discrete-event network simulator
// (simnet), message-level PBFT (pbft) and an analytic quorum-time variant
// (sb) implementing sequenced broadcast, the object/escrow ledger (ledger),
// the bucket partitioner (partition), global-ordering algorithms (order),
// the Orthrus replica framework (core), the five baseline protocols
// (baseline), the Ethereum-like workload generator (workload), the
// declarative fault/load timeline engine (scenario), and the experiment
// harness (cluster, experiments, metrics). Independent experiment runs
// fan out across cores through the worker pool in internal/runner; every
// simulation is seeded and self-contained, so parallel sweeps reproduce
// serial results exactly. ARCHITECTURE.md maps the packages, the data
// flow, the determinism contract, and the seams where new protocols and
// scenarios plug in.
//
// Entry points:
//
//   - examples/quickstart — minimal 4-replica cluster
//   - examples/chaos — composite crash-recover + straggler scenario
//   - cmd/orthrus-sim — run one configuration (-scenario applies a preset
//     fault timeline)
//   - cmd/orthrus-bench — regenerate every evaluation figure, in parallel,
//     with -json emitting a structured results artifact (EXPERIMENTS.md)
//   - bench_test.go — testing.B benchmarks, one per table/figure
package repro
