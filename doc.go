// Package repro is a from-scratch Go reproduction of "Orthrus: Accelerating
// Multi-BFT Consensus through Concurrent Partial Ordering of Transactions"
// (ICDE 2025).
//
// The supported surface is the public SDK in package orthrus (with
// scenario timelines in orthrus/scenariodsl). The canonical snippet:
//
//	res, err := orthrus.Run(ctx,
//		orthrus.WithProtocol("Orthrus"),     // or ISS, RCC, Mir, DQBFT, Ladon, orthrus.Register(...)
//		orthrus.WithReplicas(16),
//		orthrus.WithNet(orthrus.WAN),
//		orthrus.WithStragglers(1, 10),       // one 10x-slow instance
//		orthrus.WithLoad(5000),              // open-loop tx/s
//	)
//	if err != nil { ... }                        // typed validation errors, no panics
//	fmt.Printf("%.1f ktps, mean latency %.2fs\n",
//		res.ThroughputTPS/1000, res.Latency.Mean.Seconds())
//
// The implementation lives under internal/: a discrete-event network
// simulator (simnet), message-level PBFT (pbft) and an analytic
// quorum-time variant (sb) implementing sequenced broadcast, the
// object/escrow ledger (ledger), the bucket partitioner (partition),
// global-ordering algorithms (order), the Orthrus replica framework
// (core), the five baseline protocols (baseline) wired into a protocol
// registry (registry), the Ethereum-like workload generator (workload),
// the declarative fault/load timeline engine (scenario), and the
// experiment harness (cluster, experiments, metrics). Independent
// experiment runs fan out across cores through the worker pool in
// internal/runner; every simulation is seeded and self-contained, so
// parallel sweeps reproduce serial results exactly. ARCHITECTURE.md maps
// the packages, the data flow, the determinism contract, the public-API
// boundary, and the seams where new protocols and scenarios plug in.
//
// Entry points (all built on the public SDK):
//
//   - examples/quickstart — scripted 4-replica cluster with final-state
//     checks (the SDK walkthrough)
//   - examples/chaos — composite crash-recover + straggler scenario
//   - cmd/orthrus-sim — run one configuration (-scenario applies a preset
//     fault timeline)
//   - cmd/orthrus-bench — regenerate every evaluation figure, in parallel,
//     with -json emitting a structured results artifact and -list
//     enumerating protocols, figures and scenarios (EXPERIMENTS.md)
//   - bench_test.go — testing.B benchmarks, one per table/figure
package repro
